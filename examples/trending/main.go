// Trending: personalized, ego-centric trend detection in a social network
// (the paper's §1 motivating example). Every user continuously sees the
// top-3 most discussed topics among the accounts they follow — not global
// trends, but trends in their own ego network.
//
// The trending query is quasi-continuous: results are produced on demand
// (when a user opens their feed), so the optimizer mixes pre-computation
// for hot readers with on-demand evaluation for cold ones. A second
// standing query — posting volume per ego network — rides on the same
// session and the same write stream.
//
// Ingestion goes through the streaming API: a session Ingestor batches the
// post stream (auto-flushed by size and interval) and applies it through
// the sharded parallel write path, stamping logical timestamps from a
// pluggable clock.
//
// Run with: go run ./examples/trending
// (set EAGR_QUICK=1 for a tiny CI-sized workload)
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	eagr "repro"
)

// topics users post about; values in the stream are topic ids.
var topics = []string{"elections", "playoffs", "new-phone", "weather", "memes", "stocks"}

// quick shrinks workloads for the CI examples smoke.
func quick(full, small int) int {
	if os.Getenv("EAGR_QUICK") != "" {
		return small
	}
	return full
}

func main() {
	rng := rand.New(rand.NewSource(42))
	users := quick(2000, 200)

	// Scale-free-ish follower graph: each user follows ~8 accounts,
	// preferring earlier (popular) accounts.
	g := eagr.NewGraph(users)
	for u := 1; u < users; u++ {
		for k := 0; k < 8; k++ {
			var target int
			if rng.Intn(3) == 0 {
				target = rng.Intn(u)
			} else {
				target = rng.Intn(rng.Intn(u) + 1) // biased toward small ids
			}
			if target != u {
				_ = g.AddEdge(eagr.NodeID(target), eagr.NodeID(u))
			}
		}
	}

	sess, err := eagr.Open(g)
	if err != nil {
		log.Fatal(err)
	}
	// Top-3 topics over the last 20 posts of each followed account.
	trending, err := sess.Register(eagr.QuerySpec{Aggregate: "topk(3)", WindowTuples: 20})
	if err != nil {
		log.Fatal(err)
	}
	// How busy is my feed? COUNT over the same windows, same stream.
	volume, err := sess.Register(eagr.QuerySpec{Aggregate: "count", WindowTuples: 20})
	if err != nil {
		log.Fatal(err)
	}
	st := trending.Stats()
	fmt.Printf("compiled: algorithm=%s, %d partial aggregators, sharing index %.1f%%; session hosts %d queries\n",
		st.Algorithm, st.Partials, st.SharingIndex*100, sess.Stats().Queries)

	// The write stream enters through an Ingestor: Send buffers the post,
	// batches auto-flush into the session (fanning out to both queries),
	// and the logical clock stamps each post's timestamp.
	ing, err := sess.Ingest(eagr.IngestOptions{
		BatchSize: 1024,
		Clock:     eagr.LogicalClock(),
	})
	if err != nil {
		log.Fatal(err)
	}

	// Simulate a day of posting: popular users post more; each community
	// has a topic bias so ego-centric trends differ from global ones.
	start := time.Now()
	posts := 0
	for i := 0; i < quick(50000, 2000); i++ {
		author := eagr.NodeID(rng.Intn(rng.Intn(users) + 1))
		topic := int64(author) % int64(len(topics)) // community bias
		if rng.Intn(3) == 0 {
			topic = int64(rng.Intn(len(topics))) // plus global noise
		}
		if err := ing.Send(author, topic); err != nil {
			log.Fatal(err)
		}
		posts++
	}
	// Make everything sent visible before the reads below.
	if err := ing.Flush(); err != nil {
		log.Fatal(err)
	}
	ist := ing.Stats()
	fmt.Printf("ingested %d posts in %v (%.0f posts/s over %d batches, fanned out to both queries)\n",
		posts, time.Since(start).Round(time.Millisecond),
		float64(posts)/time.Since(start).Seconds(), ist.Batches)

	// A few users open their feeds.
	for _, u := range []eagr.NodeID{10, eagr.NodeID(users / 4), eagr.NodeID(3 * users / 4)} {
		res, err := trending.Read(u)
		if err != nil {
			log.Fatal(err)
		}
		vol, err := volume.Read(u)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("user %4d (%3d windowed posts) trending: ", u, vol.Scalar)
		for i, tid := range res.List {
			if i > 0 {
				fmt.Print(", ")
			}
			fmt.Print(topics[tid])
		}
		fmt.Println()
	}

	// Feed-opening is bursty; let the adaptive scheme react to what was
	// actually observed since compile time, across every query.
	for i := 0; i < quick(3000, 300); i++ {
		_, _ = trending.Read(eagr.NodeID(rng.Intn(100))) // hot readers
	}
	flips, err := sess.Rebalance()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("adaptive rebalance flipped %d dataflow decisions toward the hot readers\n", flips)
	if err := ing.Close(); err != nil {
		log.Fatal(err)
	}
}
