// Trending: personalized, ego-centric trend detection in a social network
// (the paper's §1 motivating example). Every user continuously sees the
// top-3 most discussed topics among the accounts they follow — not global
// trends, but trends in their own ego network.
//
// The trending query is quasi-continuous: results are produced on demand
// (when a user opens their feed), so the optimizer mixes pre-computation
// for hot readers with on-demand evaluation for cold ones. A second
// standing query — posting volume per ego network — rides on the same
// session and the same write stream.
//
// Run with: go run ./examples/trending
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	eagr "repro"
)

// topics users post about; values in the stream are topic ids.
var topics = []string{"elections", "playoffs", "new-phone", "weather", "memes", "stocks"}

func main() {
	rng := rand.New(rand.NewSource(42))
	const users = 2000

	// Scale-free-ish follower graph: each user follows ~8 accounts,
	// preferring earlier (popular) accounts.
	g := eagr.NewGraph(users)
	for u := 1; u < users; u++ {
		for k := 0; k < 8; k++ {
			var target int
			if rng.Intn(3) == 0 {
				target = rng.Intn(u)
			} else {
				target = rng.Intn(rng.Intn(u) + 1) // biased toward small ids
			}
			if target != u {
				_ = g.AddEdge(eagr.NodeID(target), eagr.NodeID(u))
			}
		}
	}

	sess, err := eagr.Open(g)
	if err != nil {
		log.Fatal(err)
	}
	// Top-3 topics over the last 20 posts of each followed account.
	trending, err := sess.Register(eagr.QuerySpec{Aggregate: "topk(3)", WindowTuples: 20})
	if err != nil {
		log.Fatal(err)
	}
	// How busy is my feed? COUNT over the same windows, same stream.
	volume, err := sess.Register(eagr.QuerySpec{Aggregate: "count", WindowTuples: 20})
	if err != nil {
		log.Fatal(err)
	}
	st := trending.Stats()
	fmt.Printf("compiled: algorithm=%s, %d partial aggregators, sharing index %.1f%%; session hosts %d queries\n",
		st.Algorithm, st.Partials, st.SharingIndex*100, sess.Stats().Queries)

	// Simulate a day of posting: popular users post more; each community
	// has a topic bias so ego-centric trends differ from global ones.
	start := time.Now()
	posts := 0
	for ts := int64(0); ts < 50000; ts++ {
		author := eagr.NodeID(rng.Intn(rng.Intn(users) + 1))
		topic := int64(author) % int64(len(topics)) // community bias
		if rng.Intn(3) == 0 {
			topic = int64(rng.Intn(len(topics))) // plus global noise
		}
		if err := sess.Write(author, topic, ts); err != nil {
			log.Fatal(err)
		}
		posts++
	}
	fmt.Printf("ingested %d posts in %v (%.0f posts/s, fanned out to both queries)\n",
		posts, time.Since(start).Round(time.Millisecond),
		float64(posts)/time.Since(start).Seconds())

	// A few users open their feeds.
	for _, u := range []eagr.NodeID{10, 500, 1500} {
		res, err := trending.Read(u)
		if err != nil {
			log.Fatal(err)
		}
		vol, err := volume.Read(u)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("user %4d (%3d windowed posts) trending: ", u, vol.Scalar)
		for i, tid := range res.List {
			if i > 0 {
				fmt.Print(", ")
			}
			fmt.Print(topics[tid])
		}
		fmt.Println()
	}

	// Feed-opening is bursty; let the adaptive scheme react to what was
	// actually observed since compile time, across every query.
	for i := 0; i < 3000; i++ {
		_, _ = trending.Read(eagr.NodeID(rng.Intn(100))) // hot readers
	}
	flips, err := sess.Rebalance()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("adaptive rebalance flipped %d dataflow decisions toward the hot readers\n", flips)
}
