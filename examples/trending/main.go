// Trending: personalized, ego-centric trend detection in a social network
// (the paper's §1 motivating example). Every user continuously sees the
// top-3 most discussed topics among the accounts they follow — not global
// trends, but trends in their own ego network.
//
// The query is quasi-continuous: results are produced on demand (when a
// user opens their feed), so the optimizer mixes pre-computation for hot
// readers with on-demand evaluation for cold ones.
//
// Run with: go run ./examples/trending
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	eagr "repro"
)

// topics users post about; values in the stream are topic ids.
var topics = []string{"elections", "playoffs", "new-phone", "weather", "memes", "stocks"}

func main() {
	rng := rand.New(rand.NewSource(42))
	const users = 2000

	// Scale-free-ish follower graph: each user follows ~8 accounts,
	// preferring earlier (popular) accounts.
	g := eagr.NewGraph(users)
	for u := 1; u < users; u++ {
		for k := 0; k < 8; k++ {
			var target int
			if rng.Intn(3) == 0 {
				target = rng.Intn(u)
			} else {
				target = rng.Intn(rng.Intn(u) + 1) // biased toward small ids
			}
			if target != u {
				_ = g.AddEdge(eagr.NodeID(target), eagr.NodeID(u))
			}
		}
	}

	// Top-3 topics over the last 20 posts of each followed account.
	sys, err := eagr.Open(g, eagr.QuerySpec{Aggregate: "topk(3)", WindowTuples: 20})
	if err != nil {
		log.Fatal(err)
	}
	st := sys.Stats()
	fmt.Printf("compiled: algorithm=%s, %d partial aggregators, sharing index %.1f%%\n",
		st.Algorithm, st.Partials, st.SharingIndex*100)

	// Simulate a day of posting: popular users post more; each community
	// has a topic bias so ego-centric trends differ from global ones.
	start := time.Now()
	posts := 0
	for ts := int64(0); ts < 50000; ts++ {
		author := eagr.NodeID(rng.Intn(rng.Intn(users) + 1))
		topic := int64(author) % int64(len(topics)) // community bias
		if rng.Intn(3) == 0 {
			topic = int64(rng.Intn(len(topics))) // plus global noise
		}
		if err := sys.Write(author, topic, ts); err != nil {
			log.Fatal(err)
		}
		posts++
	}
	fmt.Printf("ingested %d posts in %v (%.0f posts/s)\n",
		posts, time.Since(start).Round(time.Millisecond),
		float64(posts)/time.Since(start).Seconds())

	// A few users open their feeds.
	for _, u := range []eagr.NodeID{10, 500, 1500} {
		res, err := sys.Read(u)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("user %4d trending: ", u)
		for i, tid := range res.List {
			if i > 0 {
				fmt.Print(", ")
			}
			fmt.Print(topics[tid])
		}
		fmt.Println()
	}

	// Feed-opening is bursty; let the adaptive scheme react to what was
	// actually observed since compile time.
	for i := 0; i < 3000; i++ {
		_, _ = sys.Read(eagr.NodeID(rng.Intn(100))) // hot readers
	}
	flips, err := sys.Rebalance()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("adaptive rebalance flipped %d dataflow decisions toward the hot readers\n", flips)
}
