// Geo-alerts: local alerts in a spatio-temporal network (paper §1: "users
// are often interested in events happening in their social networks, but
// also physically close to them"). Each user's standing query aggregates
// only the *nearby* members of their social neighborhood — a filtered
// neighborhood — and maintains the maximum severity event among them over
// a sliding TIME window.
//
// Time is driven by the ingestion stream itself: reports flow through an
// Ingestor whose low watermark advances with the stream's timestamps and
// expires the window automatically — alerts decay on their own, with no
// manual ExpireAll anywhere.
//
// Run with: go run ./examples/geo-alerts
// (set EAGR_QUICK=1 for a tiny CI-sized workload)
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	eagr "repro"
)

const (
	gridSide  = 100 // users live on a gridSide x gridSide map
	nearByDst = 20  // "physically close" threshold (manhattan distance)
	windowLen = 600 // an alert is live for this many stream ticks
)

var (
	users     = 800
	positions [][2]int // the (static, for the demo) location of each user
)

func quick(full, small int) int {
	if os.Getenv("EAGR_QUICK") != "" {
		return small
	}
	return full
}

func manhattan(a, b eagr.NodeID) int {
	dx := positions[a][0] - positions[b][0]
	dy := positions[a][1] - positions[b][1]
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

func main() {
	rng := rand.New(rand.NewSource(12))
	users = quick(800, 200)
	positions = make([][2]int, users)
	for u := range positions {
		positions[u] = [2]int{rng.Intn(gridSide), rng.Intn(gridSide)}
	}

	// Social graph: ~10 friends each, some near, some far.
	g := eagr.NewGraph(users)
	for u := 0; u < users; u++ {
		for k := 0; k < 10; k++ {
			v := rng.Intn(users)
			if v != u {
				_ = g.AddEdge(eagr.NodeID(v), eagr.NodeID(u))
			}
		}
	}

	// N(u) = social neighbors within nearByDst on the map.
	near := eagr.Filtered(eagr.KHop(1),
		func(_ *eagr.Graph, center, cand eagr.NodeID) bool {
			return manhattan(center, cand) <= nearByDst
		}, "near-friends")

	sess, err := eagr.Open(g)
	if err != nil {
		log.Fatal(err)
	}
	q, err := sess.Register(eagr.QuerySpec{Aggregate: "max", WindowTime: windowLen},
		eagr.Options{Neighborhood: near})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled: %d readers over filtered neighborhoods, sharing index %.1f%%\n",
		q.Stats().Readers, q.Stats().SharingIndex*100)

	// Reports stream through the Ingestor; the logical clock is the
	// stream's time axis, and the watermark expires windows as it advances.
	ing, err := sess.Ingest(eagr.IngestOptions{BatchSize: 512, Clock: eagr.LogicalClock()})
	if err != nil {
		log.Fatal(err)
	}

	// Everyone reports low-severity events; then an incident cluster
	// around one location reports severity 90+.
	for i := 0; i < quick(20000, 2000); i++ {
		if err := ing.Send(eagr.NodeID(rng.Intn(users)), int64(rng.Intn(20))); err != nil {
			log.Fatal(err)
		}
	}
	epicenter := eagr.NodeID(7)
	reporters := 0
	for u := 0; u < users; u++ {
		if manhattan(epicenter, eagr.NodeID(u)) <= 10 {
			if err := ing.Send(eagr.NodeID(u), int64(90+rng.Intn(10))); err != nil {
				log.Fatal(err)
			}
			reporters++
		}
	}
	if err := ing.Flush(); err != nil {
		log.Fatal(err)
	}
	wm, _ := ing.Watermark()
	fmt.Printf("incident: %d users near the epicenter reported severity >= 90 (watermark %d)\n",
		reporters, wm)

	countAlerted := func() int {
		alerted := 0
		for u := 0; u < users; u++ {
			res, err := q.Read(eagr.NodeID(u))
			if err != nil {
				log.Fatal(err)
			}
			if res.Valid && res.Scalar >= 90 {
				alerted++
			}
		}
		return alerted
	}

	// Who gets alerted? Exactly users with a *nearby* friend among the
	// reporters — far-away friends never trip the filtered aggregate.
	alerted := countAlerted()
	fmt.Printf("%d of %d users see a severity >= 90 alert in their local ego network\n",
		alerted, users)
	if alerted == 0 || alerted == users {
		log.Fatal("alert locality broken: expected some but not all users alerted")
	}

	// Life goes on: ordinary low-severity traffic keeps the clock ticking.
	// Once the stream's watermark moves a full window past the incident,
	// the high-severity reports expire ON THEIR OWN — no ExpireAll, the
	// Ingestor's watermark drives time.
	for i := 0; i < windowLen+quick(2000, 400); i++ {
		if err := ing.Send(eagr.NodeID(rng.Intn(users)), int64(rng.Intn(20))); err != nil {
			log.Fatal(err)
		}
	}
	if err := ing.Flush(); err != nil {
		log.Fatal(err)
	}
	wm, _ = ing.Watermark()
	still := countAlerted()
	fmt.Printf("after the window slid past the incident (watermark %d): %d users still alerted\n",
		wm, still)
	if still != 0 {
		log.Fatal("watermark-driven expiry failed: stale alerts survived the window")
	}
	fmt.Println("alerts stayed local and decayed with stream time — no manual ExpireAll anywhere")
	if err := ing.Close(); err != nil {
		log.Fatal(err)
	}
}
