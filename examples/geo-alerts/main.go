// Geo-alerts: local alerts in a spatio-temporal network (paper §1: "users
// are often interested in events happening in their social networks, but
// also physically close to them"). Each user's standing query aggregates
// only the *nearby* members of their social neighborhood — a filtered
// neighborhood — and maintains the maximum severity event among them.
//
// Run with: go run ./examples/geo-alerts
package main

import (
	"fmt"
	"log"
	"math/rand"

	eagr "repro"
)

const (
	users     = 800
	gridSide  = 100 // users live on a gridSide x gridSide map
	nearByDst = 20  // "physically close" threshold (manhattan distance)
)

// positions is the (static, for the demo) location of each user.
var positions [users][2]int

func manhattan(a, b eagr.NodeID) int {
	dx := positions[a][0] - positions[b][0]
	dy := positions[a][1] - positions[b][1]
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

func main() {
	rng := rand.New(rand.NewSource(12))
	for u := range positions {
		positions[u] = [2]int{rng.Intn(gridSide), rng.Intn(gridSide)}
	}

	// Social graph: ~10 friends each, some near, some far.
	g := eagr.NewGraph(users)
	for u := 0; u < users; u++ {
		for k := 0; k < 10; k++ {
			v := rng.Intn(users)
			if v != u {
				_ = g.AddEdge(eagr.NodeID(v), eagr.NodeID(u))
			}
		}
	}

	// N(u) = social neighbors within nearByDst on the map.
	near := eagr.Filtered(eagr.KHop(1),
		func(_ *eagr.Graph, center, cand eagr.NodeID) bool {
			return manhattan(center, cand) <= nearByDst
		}, "near-friends")

	sess, err := eagr.Open(g)
	if err != nil {
		log.Fatal(err)
	}
	q, err := sess.Register(eagr.QuerySpec{Aggregate: "max", WindowTuples: 5},
		eagr.Options{Neighborhood: near})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled: %d readers over filtered neighborhoods, sharing index %.1f%%\n",
		q.Stats().Readers, q.Stats().SharingIndex*100)

	// Everyone reports low-severity events; then an incident cluster
	// around one location reports severity 90+.
	ts := int64(0)
	for i := 0; i < 20000; i++ {
		u := eagr.NodeID(rng.Intn(users))
		if err := sess.Write(u, int64(rng.Intn(20)), ts); err != nil {
			log.Fatal(err)
		}
		ts++
	}
	epicenter := eagr.NodeID(7)
	reporters := 0
	for u := 0; u < users; u++ {
		if manhattan(epicenter, eagr.NodeID(u)) <= 10 {
			if err := sess.Write(eagr.NodeID(u), int64(90+rng.Intn(10)), ts); err != nil {
				log.Fatal(err)
			}
			ts++
			reporters++
		}
	}
	fmt.Printf("incident: %d users near the epicenter reported severity >= 90\n", reporters)

	// Who gets alerted? Exactly users with a *nearby* friend among the
	// reporters — far-away friends never trip the filtered aggregate.
	alerted, checked := 0, 0
	for u := 0; u < users; u++ {
		res, err := q.Read(eagr.NodeID(u))
		if err != nil {
			log.Fatal(err)
		}
		checked++
		if res.Valid && res.Scalar >= 90 {
			alerted++
		}
	}
	fmt.Printf("%d of %d users see a severity >= 90 alert in their local ego network\n",
		alerted, checked)
	if alerted == 0 || alerted == users {
		log.Fatal("alert locality broken: expected some but not all users alerted")
	}
	fmt.Println("alerts stayed local: only users with nearby reporting friends were notified")
}
