// Topology-valued queries, part 3: EGO-BETWEENNESS — how much of a broker
// each user is within their own ego network (Everett–Borgatti: for every
// non-adjacent pair of neighbors, the ego's share of the shortest paths
// between them). Fixed point at eagr.TopoScale = 1.0.
//
// Two maintenance modes:
//   - windowless: exact value computed on read, pushed on every structural
//     change touching the ego;
//   - windowed (QuerySpec.WindowTime > 0): recomputed for CHANGED egos on a
//     watermark schedule — the temporal batch pattern for aggregates whose
//     per-edge delta is not cheap. Reads serve the last scheduled snapshot.
//
// Run with: go run ./examples/ego-betweenness
package main

import (
	"fmt"
	"log"

	eagr "repro"
)

func main() {
	const users = 5
	sess, err := eagr.Open(eagr.NewGraph(users))
	if err != nil {
		log.Fatal(err)
	}

	// Windowless: always exact, push-on-churn.
	live, err := sess.Register(eagr.QuerySpec{Aggregate: "ego-betweenness"})
	if err != nil {
		log.Fatal(err)
	}
	// Windowed: recompute dirty egos when the watermark advances >= 100
	// time units past the last tick.
	sched, err := sess.Register(eagr.QuerySpec{Aggregate: "ego-betweenness", WindowTime: 100})
	if err != nil {
		log.Fatal(err)
	}

	// A broker topology: user 0 connects two otherwise-separate circles.
	for _, e := range [][2]eagr.NodeID{
		{1, 0}, {2, 0}, // circle A touches the broker
		{3, 0}, {4, 0}, // circle B touches the broker
		{1, 2}, {3, 4}, // the circles are internally tight
	} {
		if err := sess.AddEdge(e[0], e[1]); err != nil {
			log.Fatal(err)
		}
	}

	eb := func(q *eagr.Query, v eagr.NodeID) float64 {
		r, err := q.Read(v)
		if err != nil {
			log.Fatal(err)
		}
		return float64(r.Scalar) / float64(eagr.TopoScale)
	}
	// Broker 0 sits between 4 of its 6 neighbor pairs (1-3, 1-4, 2-3, 2-4).
	fmt.Printf("live EB: broker=%.2f circleA=%.2f circleB=%.2f\n",
		eb(live, 0), eb(live, 1), eb(live, 3))

	// The windowed view ticks off the expiry watermark: the first watermark
	// arms the schedule and takes the initial snapshot.
	sess.ExpireAll(100)
	fmt.Printf("scheduled EB after first tick: broker=%.2f\n", eb(sched, 0))

	// Bridge the circles directly: 1-3. The live view moves immediately;
	// the scheduled view still serves its snapshot.
	if err := sess.AddEdge(1, 3); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after 1-3 bridge: live=%.2f scheduled(stale)=%.2f\n", eb(live, 0), eb(sched, 0))

	// Not enough time has passed — no tick, still the old snapshot.
	sess.ExpireAll(150)
	fmt.Printf("watermark 150 (< window): scheduled=%.2f\n", eb(sched, 0))

	// The next watermark past the window recomputes exactly the egos the
	// churn dirtied and pushes the changed values to subscribers.
	updates, cancel, err := sched.Subscribe(16, 0)
	if err != nil {
		log.Fatal(err)
	}
	defer cancel()
	sess.ExpireAll(220)
	u := <-updates
	fmt.Printf("watermark 220 ticks: scheduled broker EB -> %.2f (delivered ts=%d)\n",
		float64(u.Result.Scalar)/float64(eagr.TopoScale), u.TS)
}
