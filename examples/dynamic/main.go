// Dynamic: ego-centric aggregates over a rapidly evolving graph (§3.3).
// Tags trend in and out; here the graph structure itself churns — nodes
// join, follow edges appear and disappear — while TWO standing queries
// (MAX and COUNT) on one session stay correct through incremental overlay
// maintenance: every structural event mutates the shared graph once and
// repairs both queries' overlays.
//
// Run with: go run ./examples/dynamic
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	eagr "repro"
)

func main() {
	rng := rand.New(rand.NewSource(99))
	const initial = 300

	g := eagr.NewGraph(initial)
	type edge struct{ u, v eagr.NodeID }
	var edges []edge
	for i := 0; i < 1200; i++ {
		u, v := eagr.NodeID(rng.Intn(initial)), eagr.NodeID(rng.Intn(initial))
		if u != v && g.AddEdge(u, v) == nil {
			edges = append(edges, edge{u, v})
		}
	}

	// IOB overlays support in-place structural maintenance.
	sess, err := eagr.Open(g, eagr.Options{Algorithm: "iob"})
	if err != nil {
		log.Fatal(err)
	}
	// MAX over each ego network: "the highest-severity event near me".
	maxQ, err := sess.Register(eagr.QuerySpec{Aggregate: "max"})
	if err != nil {
		log.Fatal(err)
	}
	// COUNT of reporting neighbors, maintained over the same churn.
	cntQ, err := sess.Register(eagr.QuerySpec{Aggregate: "count"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled: maintainable=%v, sharing index %.1f%%, %d queries / %d groups\n",
		maxQ.Stats().Maintainable, maxQ.Stats().SharingIndex*100,
		sess.Stats().Queries, sess.Stats().Groups)

	severity := make(map[eagr.NodeID]int64)
	start := time.Now()
	var structOps, contentOps, reads int
	for step := 0; step < 20000; step++ {
		switch rng.Intn(10) {
		case 0: // edge churn: ~10% of events are structural
			if rng.Intn(2) == 0 || len(edges) == 0 {
				u, v := eagr.NodeID(rng.Intn(initial)), eagr.NodeID(rng.Intn(initial))
				if u != v && !g.HasEdge(u, v) {
					if err := sess.AddEdge(u, v); err != nil {
						log.Fatal(err)
					}
					edges = append(edges, edge{u, v})
					structOps++
				}
			} else {
				i := rng.Intn(len(edges))
				e := edges[i]
				if err := sess.RemoveEdge(e.u, e.v); err != nil {
					log.Fatal(err)
				}
				edges[i] = edges[len(edges)-1]
				edges = edges[:len(edges)-1]
				structOps++
			}
		case 1, 2, 3, 4: // content updates feed both queries
			v := eagr.NodeID(rng.Intn(initial))
			sev := int64(rng.Intn(100))
			if err := sess.Write(v, sev, int64(step)); err != nil {
				log.Fatal(err)
			}
			severity[v] = sev
			contentOps++
		default: // reads, verified against a brute-force model
			v := eagr.NodeID(rng.Intn(initial))
			res, err := maxQ.Read(v)
			if err != nil {
				log.Fatal(err)
			}
			cnt, err := cntQ.Read(v)
			if err != nil {
				log.Fatal(err)
			}
			reads++
			var want int64
			var wantN int64
			found := false
			for _, u := range g.In(v) {
				if s, ok := severity[u]; ok {
					wantN++
					if !found || s > want {
						want, found = s, true
					}
				}
			}
			if found != res.Valid || (found && res.Scalar != want) {
				log.Fatalf("step %d: max(%d) = %v, want (%d,%v)", step, v, res, want, found)
			}
			if cnt.Scalar != wantN {
				log.Fatalf("step %d: count(%d) = %v, want %d", step, v, cnt, wantN)
			}
		}
	}
	fmt.Printf("processed %d structural ops, %d writes, %d verified reads in %v\n",
		structOps, contentOps, reads, time.Since(start).Round(time.Millisecond))
	fmt.Printf("final overlays: %d partials total, %d groups\n",
		sess.Stats().Partials, sess.Stats().Groups)
	fmt.Println("all reads matched the brute-force oracle — both overlays stayed consistent under churn")
}
