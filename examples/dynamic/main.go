// Dynamic: ego-centric aggregates over a rapidly evolving graph (§3.3).
// Here the graph structure itself churns — follow edges appear and
// disappear — while TWO standing queries (MAX and COUNT) on one session
// stay correct through incremental overlay maintenance.
//
// Everything arrives as ONE interleaved event stream, the paper's data
// model: content writes and structural changes flow through a single
// Ingestor in stream order. Runs of consecutive structural events are
// coalesced into one overlay repair per query instead of one per event;
// after each flushed round, every node's aggregates are verified against a
// brute-force model of the stream.
//
// Run with: go run ./examples/dynamic
// (set EAGR_QUICK=1 for a tiny CI-sized workload)
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	eagr "repro"
)

func quick(full, small int) int {
	if os.Getenv("EAGR_QUICK") != "" {
		return small
	}
	return full
}

func main() {
	rng := rand.New(rand.NewSource(99))
	const nodes = 300

	g := eagr.NewGraph(nodes)
	type edge struct{ u, v eagr.NodeID }
	present := map[edge]bool{}
	for i := 0; i < 1200; i++ {
		u, v := eagr.NodeID(rng.Intn(nodes)), eagr.NodeID(rng.Intn(nodes))
		e := edge{u, v}
		if u != v && !present[e] {
			if g.AddEdge(u, v) == nil {
				present[e] = true
			}
		}
	}

	// IOB overlays support in-place structural maintenance.
	sess, err := eagr.Open(g, eagr.Options{Algorithm: "iob"})
	if err != nil {
		log.Fatal(err)
	}
	// MAX over each ego network: "the highest-severity event near me".
	maxQ, err := sess.Register(eagr.QuerySpec{Aggregate: "max"})
	if err != nil {
		log.Fatal(err)
	}
	// COUNT of reporting neighbors, maintained over the same churn.
	cntQ, err := sess.Register(eagr.QuerySpec{Aggregate: "count"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled: maintainable=%v, sharing index %.1f%%, %d queries / %d groups\n",
		maxQ.Stats().Maintainable, maxQ.Stats().SharingIndex*100,
		sess.Stats().Queries, sess.Stats().Groups)

	// One stream for everything. The model below (severity + present) is
	// maintained from the events we SEND, never by peeking at the live
	// graph — the ingestor owns the apply side.
	ing, err := sess.Ingest(eagr.IngestOptions{BatchSize: 256, Clock: eagr.LogicalClock()})
	if err != nil {
		log.Fatal(err)
	}
	severity := map[eagr.NodeID]int64{}
	start := time.Now()
	var structOps, contentOps, checks int
	rounds, perRound := quick(40, 8), 500
	for round := 0; round < rounds; round++ {
		for i := 0; i < perRound; i++ {
			if rng.Intn(10) == 0 {
				// Structural churn: toggle a random potential edge. Bursts
				// of consecutive structural events coalesce into one
				// overlay repair per query at apply time.
				u, v := eagr.NodeID(rng.Intn(nodes)), eagr.NodeID(rng.Intn(nodes))
				if u == v {
					continue
				}
				e := edge{u, v}
				var ev eagr.Event
				if present[e] {
					ev = eagr.NewEdgeRemove(u, v, 0)
					delete(present, e)
				} else {
					ev = eagr.NewEdgeAdd(u, v, 0)
					present[e] = true
				}
				if err := ing.SendEvent(ev); err != nil {
					log.Fatal(err)
				}
				structOps++
				continue
			}
			v := eagr.NodeID(rng.Intn(nodes))
			sev := int64(rng.Intn(100))
			if err := ing.Send(v, sev); err != nil {
				log.Fatal(err)
			}
			severity[v] = sev
			contentOps++
		}
		// Synchronize, then verify every node against the brute-force
		// model of what we streamed.
		if err := ing.Flush(); err != nil {
			log.Fatal(err)
		}
		inOf := map[eagr.NodeID][]eagr.NodeID{}
		for e := range present {
			inOf[e.v] = append(inOf[e.v], e.u)
		}
		for v := eagr.NodeID(0); v < nodes; v++ {
			res, err := maxQ.Read(v)
			if err != nil {
				log.Fatal(err)
			}
			cnt, err := cntQ.Read(v)
			if err != nil {
				log.Fatal(err)
			}
			var want, wantN int64
			found := false
			for _, u := range inOf[v] {
				if s, ok := severity[u]; ok {
					wantN++
					if !found || s > want {
						want, found = s, true
					}
				}
			}
			if found != res.Valid || (found && res.Scalar != want) {
				log.Fatalf("round %d: max(%d) = %v, want (%d,%v)", round, v, res, want, found)
			}
			if cnt.Scalar != wantN {
				log.Fatalf("round %d: count(%d) = %v, want %d", round, v, cnt, wantN)
			}
			checks++
		}
	}
	if err := ing.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed %d structural ops + %d writes through one ingestor in %v; %d verified reads\n",
		structOps, contentOps, time.Since(start).Round(time.Millisecond), checks)
	fmt.Printf("final overlays: %d partials total, %d groups\n",
		sess.Stats().Partials, sess.Stats().Groups)
	fmt.Println("all reads matched the brute-force oracle — both overlays stayed consistent under churn")
}
