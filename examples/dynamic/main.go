// Dynamic: ego-centric aggregates over a rapidly evolving graph (§3.3).
// Tags trend in and out; here the graph structure itself churns — nodes
// join, follow edges appear and disappear — while standing MAX queries
// stay correct through incremental overlay maintenance.
//
// Run with: go run ./examples/dynamic
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	eagr "repro"
)

func main() {
	rng := rand.New(rand.NewSource(99))
	const initial = 300

	g := eagr.NewGraph(initial)
	type edge struct{ u, v eagr.NodeID }
	var edges []edge
	for i := 0; i < 1200; i++ {
		u, v := eagr.NodeID(rng.Intn(initial)), eagr.NodeID(rng.Intn(initial))
		if u != v && g.AddEdge(u, v) == nil {
			edges = append(edges, edge{u, v})
		}
	}

	// MAX over each ego network: "the highest-severity event near me".
	// IOB overlays support in-place structural maintenance.
	sys, err := eagr.Open(g, eagr.QuerySpec{Aggregate: "max"},
		eagr.Options{Algorithm: "iob"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled: maintainable=%v, sharing index %.1f%%\n",
		sys.Stats().Maintainable, sys.Stats().SharingIndex*100)

	severity := make(map[eagr.NodeID]int64)
	start := time.Now()
	var structOps, contentOps, reads int
	for step := 0; step < 20000; step++ {
		switch rng.Intn(10) {
		case 0: // edge churn: ~10% of events are structural
			if rng.Intn(2) == 0 || len(edges) == 0 {
				u, v := eagr.NodeID(rng.Intn(initial)), eagr.NodeID(rng.Intn(initial))
				if u != v && !g.HasEdge(u, v) {
					if err := sys.AddEdge(u, v); err != nil {
						log.Fatal(err)
					}
					edges = append(edges, edge{u, v})
					structOps++
				}
			} else {
				i := rng.Intn(len(edges))
				e := edges[i]
				if err := sys.RemoveEdge(e.u, e.v); err != nil {
					log.Fatal(err)
				}
				edges[i] = edges[len(edges)-1]
				edges = edges[:len(edges)-1]
				structOps++
			}
		case 1, 2, 3, 4: // content updates
			v := eagr.NodeID(rng.Intn(initial))
			sev := int64(rng.Intn(100))
			if err := sys.Write(v, sev, int64(step)); err != nil {
				log.Fatal(err)
			}
			severity[v] = sev
			contentOps++
		default: // reads, verified against a brute-force model
			v := eagr.NodeID(rng.Intn(initial))
			res, err := sys.Read(v)
			if err != nil {
				log.Fatal(err)
			}
			reads++
			var want int64
			found := false
			for _, u := range g.In(v) {
				if s, ok := severity[u]; ok && (!found || s > want) {
					want, found = s, true
				}
			}
			if found != res.Valid || (found && res.Scalar != want) {
				log.Fatalf("step %d: read(%d) = %v, want (%d,%v)", step, v, res, want, found)
			}
		}
	}
	fmt.Printf("processed %d structural ops, %d writes, %d verified reads in %v\n",
		structOps, contentOps, reads, time.Since(start).Round(time.Millisecond))
	fmt.Printf("final overlay: %d partials, sharing index %.1f%%\n",
		sys.Stats().Partials, sys.Stats().SharingIndex*100)
	fmt.Println("all reads matched the brute-force oracle — overlay stayed consistent under churn")
}
