// Anomaly: continuous anomaly detection in a communication network (the
// paper's §1 phone-call example). For every node we continuously maintain
// the number of messages in its neighborhood within a sliding time window;
// an alert fires when the count exceeds a per-node baseline — e.g. a burst
// of calls around a group of numbers.
//
// Unlike the trending example, this query is CONTINUOUS: results must be
// kept up to date as updates arrive (the alert predicate is evaluated on
// every write), so the system compiles it in all-push mode.
//
// Run with: go run ./examples/anomaly
package main

import (
	"fmt"
	"log"
	"math/rand"

	eagr "repro"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	const nodes = 500

	// A sparse communication graph: who exchanges messages with whom.
	g := eagr.NewGraph(nodes)
	for v := 0; v < nodes; v++ {
		for k := 0; k < 4; k++ {
			peer := rng.Intn(nodes)
			if peer != v {
				// Communication is symmetric.
				_ = g.AddEdge(eagr.NodeID(v), eagr.NodeID(peer))
				_ = g.AddEdge(eagr.NodeID(peer), eagr.NodeID(v))
			}
		}
	}

	// Continuous COUNT over a 100-tick time window of each neighborhood.
	sys, err := eagr.Open(g, eagr.QuerySpec{
		Aggregate:  "count",
		WindowTime: 100,
		Continuous: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled continuous query: mode=%s, %d partial aggregators\n",
		sys.Stats().Mode, sys.Stats().Partials)

	// Phase 1: learn per-node baselines from normal traffic.
	ts := int64(0)
	for ; ts < 20000; ts++ {
		src := eagr.NodeID(rng.Intn(nodes))
		if err := sys.Write(src, 1, ts); err != nil {
			log.Fatal(err)
		}
	}
	baseline := make([]int64, nodes)
	for v := 0; v < nodes; v++ {
		res, err := sys.Read(eagr.NodeID(v))
		if err != nil {
			log.Fatal(err)
		}
		baseline[v] = res.Scalar
	}

	// Phase 2: inject an anomaly — a tight burst of messages among the
	// neighbors of node 42 — while normal traffic continues.
	burstCenter := eagr.NodeID(42)
	alerts := map[eagr.NodeID]int64{}
	for i := 0; i < 5000; i++ {
		ts++
		var src eagr.NodeID
		if i%3 == 0 {
			// Burst traffic from the in-neighbors of the center.
			in := g.In(burstCenter)
			if len(in) > 0 {
				src = in[rng.Intn(len(in))]
			}
		} else {
			src = eagr.NodeID(rng.Intn(nodes))
		}
		if err := sys.Write(src, 1, ts); err != nil {
			log.Fatal(err)
		}
		// Continuous predicate: check the written node's consumers.
		// (Results are push-maintained, so reads are O(1).)
		for _, watched := range g.Out(src) {
			res, err := sys.Read(watched)
			if err != nil {
				log.Fatal(err)
			}
			if res.Scalar > 3*baseline[watched]+10 {
				if _, seen := alerts[watched]; !seen {
					alerts[watched] = res.Scalar
				}
			}
		}
	}

	fmt.Printf("%d nodes raised anomaly alerts\n", len(alerts))
	if v, ok := alerts[burstCenter]; ok {
		fmt.Printf("ALERT at node %d: %d messages in window (baseline %d) — burst detected\n",
			burstCenter, v, baseline[burstCenter])
	} else {
		fmt.Printf("no alert at the burst center (baseline %d) — tune the threshold\n",
			baseline[burstCenter])
	}
}
