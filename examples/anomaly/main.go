// Anomaly: continuous anomaly detection in a communication network (the
// paper's §1 phone-call example). For every node we continuously maintain
// the number of messages in its neighborhood within a sliding time window;
// an alert fires when the count exceeds a per-node baseline — e.g. a burst
// of calls around a group of numbers.
//
// Unlike the trending example, this query is CONTINUOUS: results are kept
// up to date on every write (the system compiles it all-push), and instead
// of polling we SUBSCRIBE — the engine pushes {Node, Result, TS} updates
// into a bounded channel whenever a write lands in a subscribed node's ego
// network, dropping the oldest update (and counting the drop) rather than
// ever blocking ingestion.
//
// Run with: go run ./examples/anomaly
// (set EAGR_QUICK=1 for a tiny CI-sized workload)
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	eagr "repro"
)

// quick shrinks workloads for the CI examples smoke.
func quick(full, small int) int {
	if os.Getenv("EAGR_QUICK") != "" {
		return small
	}
	return full
}

func main() {
	rng := rand.New(rand.NewSource(7))
	nodes := quick(500, 150)

	// A sparse communication graph: who exchanges messages with whom.
	g := eagr.NewGraph(nodes)
	for v := 0; v < nodes; v++ {
		for k := 0; k < 4; k++ {
			peer := rng.Intn(nodes)
			if peer != v {
				// Communication is symmetric.
				_ = g.AddEdge(eagr.NodeID(v), eagr.NodeID(peer))
				_ = g.AddEdge(eagr.NodeID(peer), eagr.NodeID(v))
			}
		}
	}

	sess, err := eagr.Open(g)
	if err != nil {
		log.Fatal(err)
	}
	// Continuous COUNT over a 100-tick time window of each neighborhood.
	q, err := sess.Register(eagr.QuerySpec{
		Aggregate:  "count",
		WindowTime: 100,
		Continuous: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled continuous query: mode=%s, %d partial aggregators\n",
		q.Stats().Mode, q.Stats().Partials)

	// Phase 1: learn per-node baselines from normal traffic.
	ts := int64(0)
	for ; ts < int64(quick(20000, 4000)); ts++ {
		src := eagr.NodeID(rng.Intn(nodes))
		if err := sess.Write(src, 1, ts); err != nil {
			log.Fatal(err)
		}
	}
	baseline := make([]int64, nodes)
	for v := 0; v < nodes; v++ {
		res, err := q.Read(eagr.NodeID(v))
		if err != nil {
			log.Fatal(err)
		}
		baseline[v] = res.Scalar
	}

	// Phase 2: subscribe to the continuous query — every write now pushes
	// the refreshed counts of the affected ego networks to us — and inject
	// an anomaly: a tight burst of messages among the neighbors of node 42
	// while normal traffic continues.
	updates, cancel, err := q.Subscribe(1 << 15)
	if err != nil {
		log.Fatal(err)
	}
	defer cancel()

	burstCenter := eagr.NodeID(42)
	alerts := map[eagr.NodeID]int64{}
	drain := func() {
		for {
			select {
			case u := <-updates:
				if u.Result.Scalar > 3*baseline[u.Node]+10 {
					if _, seen := alerts[u.Node]; !seen {
						alerts[u.Node] = u.Result.Scalar
					}
				}
			default:
				return
			}
		}
	}
	for i := 0; i < quick(5000, 1500); i++ {
		ts++
		var src eagr.NodeID
		if i%3 == 0 {
			// Burst traffic from the in-neighbors of the center.
			in := g.In(burstCenter)
			if len(in) > 0 {
				src = in[rng.Intn(len(in))]
			}
		} else {
			src = eagr.NodeID(rng.Intn(nodes))
		}
		if err := sess.Write(src, 1, ts); err != nil {
			log.Fatal(err)
		}
		drain()
	}
	drain()

	fmt.Printf("%d nodes raised anomaly alerts (%d pushed updates dropped)\n",
		len(alerts), q.Stats().DroppedUpdates)
	if v, ok := alerts[burstCenter]; ok {
		fmt.Printf("ALERT at node %d: %d messages in window (baseline %d) — burst detected\n",
			burstCenter, v, baseline[burstCenter])
	} else {
		fmt.Printf("no alert at the burst center (baseline %d) — tune the threshold\n",
			baseline[burstCenter])
	}
}
