// Quickstart: compile an ego-centric SUM query over a small social graph,
// stream a few content updates, and read the per-user aggregates.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	eagr "repro"
)

func main() {
	// A small "who-follows-whom" graph: an edge u -> v means v's ego
	// network aggregates u's content (v follows u's posts).
	const users = 6
	g := eagr.NewGraph(users)
	follows := [][2]eagr.NodeID{
		{1, 0}, {2, 0}, {3, 0}, // user 0 sees 1, 2, 3
		{0, 1}, {2, 1}, // user 1 sees 0, 2
		{0, 2},         // user 2 sees 0
		{4, 3}, {5, 3}, // user 3 sees 4, 5
		{3, 4}, // user 4 sees 3
		{3, 5}, // user 5 sees 3
	}
	for _, e := range follows {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			log.Fatal(err)
		}
	}

	// Each user's standing query: SUM over the latest value posted by
	// each account they follow. The compiler picks the overlay algorithm
	// and makes optimal push/pull decisions automatically.
	sys, err := eagr.Open(g, eagr.QuerySpec{Aggregate: "sum"})
	if err != nil {
		log.Fatal(err)
	}
	st := sys.Stats()
	fmt.Printf("compiled overlay: algorithm=%s sharing-index=%.1f%% partials=%d\n",
		st.Algorithm, st.SharingIndex*100, st.Partials)

	// Stream content updates (e.g., engagement scores of each user's
	// latest post).
	scores := map[eagr.NodeID]int64{0: 10, 1: 7, 2: 3, 3: 25, 4: 1, 5: 4}
	ts := int64(0)
	for user, score := range scores {
		if err := sys.Write(user, score, ts); err != nil {
			log.Fatal(err)
		}
		ts++
	}

	// Read every user's aggregate.
	for u := eagr.NodeID(0); u < users; u++ {
		res, err := sys.Read(u)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("user %d: neighborhood sum = %s\n", u, res)
	}

	// The graph is dynamic: user 5 starts following user 0.
	if err := sys.AddEdge(0, 5); err != nil {
		log.Fatal(err)
	}
	res, _ := sys.Read(5)
	fmt.Printf("user 5 after following user 0: %s (was 25)\n", res)
}
