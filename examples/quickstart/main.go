// Quickstart: open a multi-query session over a small social graph,
// register standing ego-centric queries, stream a few content updates, and
// read the per-user aggregates through each query's handle.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	eagr "repro"
)

func main() {
	// A small "who-follows-whom" graph: an edge u -> v means v's ego
	// network aggregates u's content (v follows u's posts).
	const users = 6
	g := eagr.NewGraph(users)
	follows := [][2]eagr.NodeID{
		{1, 0}, {2, 0}, {3, 0}, // user 0 sees 1, 2, 3
		{0, 1}, {2, 1}, // user 1 sees 0, 2
		{0, 2},         // user 2 sees 0
		{4, 3}, {5, 3}, // user 3 sees 4, 5
		{3, 4}, // user 4 sees 3
		{3, 5}, // user 5 sees 3
	}
	for _, e := range follows {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			log.Fatal(err)
		}
	}

	// One session hosts every standing query over the shared graph.
	// Register as many as you like; compatible ones share their partial
	// aggregators.
	sess, err := eagr.Open(g)
	if err != nil {
		log.Fatal(err)
	}

	// Query 1: SUM over the latest value posted by each followed account.
	sums, err := sess.Register(eagr.QuerySpec{Aggregate: "sum"})
	if err != nil {
		log.Fatal(err)
	}
	// Query 2: the same SUM registered by another consumer — it attaches
	// to the already-compiled overlay for free (Groups stays 1).
	sums2, err := sess.Register(eagr.QuerySpec{Aggregate: "sum"})
	if err != nil {
		log.Fatal(err)
	}
	// Query 3: MAX compiles its own overlay, side by side on the graph.
	maxes, err := sess.Register(eagr.QuerySpec{Aggregate: "max"})
	if err != nil {
		log.Fatal(err)
	}
	st := sess.Stats()
	fmt.Printf("session: %d queries in %d overlay groups, %d partial aggregators total\n",
		st.Queries, st.Groups, st.Partials)
	fmt.Printf("the sum overlay is shared by %d queries (algorithm=%s)\n",
		sums.Stats().Shared, sums.Stats().Algorithm)

	// Stream content updates (e.g., engagement scores of each user's
	// latest post) through the session's streaming front door: the
	// Ingestor batches events, stamps timestamps from its clock, and one
	// applied write feeds every registered query.
	ing, err := sess.Ingest(eagr.IngestOptions{Clock: eagr.LogicalClock()})
	if err != nil {
		log.Fatal(err)
	}
	scores := map[eagr.NodeID]int64{0: 10, 1: 7, 2: 3, 3: 25, 4: 1, 5: 4}
	for user, score := range scores {
		if err := ing.Send(user, score); err != nil {
			log.Fatal(err)
		}
	}
	// Flush before reading, so everything buffered is applied.
	if err := ing.Flush(); err != nil {
		log.Fatal(err)
	}

	// Read each user's standing results through the per-query handles.
	for user := eagr.NodeID(0); user < users; user++ {
		s, err := sums.Read(user)
		if err != nil {
			log.Fatal(err)
		}
		m, err := maxes.Read(user)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("user %d: sum(ego)=%s max(ego)=%s\n", user, s, m)
	}

	// The two sum handles answer from the same partial aggregators.
	a, _ := sums.Read(0)
	b, _ := sums2.Read(0)
	fmt.Printf("shared handles agree on user 0: %s == %s\n", a, b)

	// The graph is dynamic: user 5 starts following user 0 — a structural
	// event on the SAME stream as the content — and every query's overlay
	// is repaired incrementally.
	if err := ing.SendEvent(eagr.NewEdgeAdd(0, 5, 0)); err != nil {
		log.Fatal(err)
	}
	if err := ing.Flush(); err != nil {
		log.Fatal(err)
	}
	res, _ := sums.Read(5)
	fmt.Printf("user 5 after following user 0: %s (was 25)\n", res)
	if err := ing.Close(); err != nil {
		log.Fatal(err)
	}

	// Retiring a query releases its reference; the overlay lives on while
	// the other sum query still uses it.
	if err := sums2.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after close: %d queries, %d groups\n",
		sess.Stats().Queries, sess.Stats().Groups)
}
