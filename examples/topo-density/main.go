// Topology-valued queries, part 1: ego-network DENSITY as a standing,
// incrementally-maintained query. Unlike content aggregates (sum, max, …),
// density is fed by edge churn — content writes never touch it. The value
// at ego v is T(v) / C(k,2) in fixed point (eagr.TopoScale = 1e6): the
// fraction of v's neighbor pairs that are themselves connected.
//
// Run with: go run ./examples/topo-density
package main

import (
	"fmt"
	"log"

	eagr "repro"
)

func main() {
	// A small friend graph. Undirected semantics: for topology queries an
	// edge in either direction makes two users neighbors.
	const users = 6
	g := eagr.NewGraph(users)
	for _, e := range [][2]eagr.NodeID{
		{1, 0}, {2, 0}, {3, 0}, // 0 knows 1, 2, 3
		{1, 2}, // 1-2 closes a triangle through 0
	} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			log.Fatal(err)
		}
	}
	sess, err := eagr.Open(g)
	if err != nil {
		log.Fatal(err)
	}

	// Registered exactly like a numeric aggregate — the name selects the
	// topology registry. Spellings are canonicalized ("density" here).
	density, err := sess.Register(eagr.QuerySpec{Aggregate: "density"})
	if err != nil {
		log.Fatal(err)
	}

	read := func(v eagr.NodeID) float64 {
		r, err := density.Read(v)
		if err != nil {
			log.Fatal(err)
		}
		return float64(r.Scalar) / float64(eagr.TopoScale)
	}
	// Ego 0 has neighbors {1,2,3} and one connected pair (1-2): 1/3.
	fmt.Printf("density(0) = %.3f  (one of three neighbor pairs connected)\n", read(0))

	// Structural events maintain the value incrementally — no recompute.
	// Close 2-3 and 1-3: ego 0's neighborhood becomes a clique.
	for _, e := range [][2]eagr.NodeID{{2, 3}, {1, 3}} {
		if err := sess.ApplyBatch([]eagr.Event{eagr.NewEdgeAdd(e[0], e[1], 0)}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("after %d-%d: density(0) = %.3f\n", e[0], e[1], read(0))
	}

	// Content writes are invisible to topology queries (and cost them
	// nothing — the maintenance hook only fires on structural repair).
	if err := sess.Write(1, 42, 1); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after a content write: density(0) = %.3f (unchanged)\n", read(0))

	// Subscriptions deliver on structural change, exactly like numeric
	// query subscriptions deliver on content.
	updates, cancel, err := density.Subscribe(16, 0)
	if err != nil {
		log.Fatal(err)
	}
	defer cancel()
	if err := sess.RemoveEdge(1, 2); err != nil {
		log.Fatal(err)
	}
	u := <-updates
	fmt.Printf("push on edge removal: density(%d) dropped to %.3f\n",
		u.Node, float64(u.Result.Scalar)/float64(eagr.TopoScale))
}
