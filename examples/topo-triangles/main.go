// Topology-valued queries, part 2: TRIANGLE and WEDGE counts per ego,
// streamed through an Ingestor alongside ordinary content. Triangles are
// maintained incrementally: an edge arriving or leaving adjusts the count
// of every ego adjacent to both endpoints — O(degree overlap) per event,
// never a recount. Wedges (open neighbor pairs, C(k,2)) come from the same
// mirror; triangles/wedges is the local clustering coefficient.
//
// Run with: go run ./examples/topo-triangles
package main

import (
	"fmt"
	"log"

	eagr "repro"
)

func main() {
	const users = 8
	sess, err := eagr.Open(eagr.NewGraph(users))
	if err != nil {
		log.Fatal(err)
	}
	triangles, err := sess.Register(eagr.QuerySpec{Aggregate: "triangles"})
	if err != nil {
		log.Fatal(err)
	}
	wedges, err := sess.Register(eagr.QuerySpec{Aggregate: "wedges"})
	if err != nil {
		log.Fatal(err)
	}
	// "tri" is an accepted spelling of the same aggregate: it shares the
	// first query's engine view instead of building its own.
	alias, err := sess.Register(eagr.QuerySpec{Aggregate: "tri"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("triangles view shared by %d queries; session hosts %d topo views\n",
		alias.Stats().Shared, sess.Stats().TopoViews)

	// One mixed stream: structural churn and content writes interleaved.
	// Only the structural events reach the topology engine.
	ing, err := sess.Ingest(eagr.IngestOptions{Clock: eagr.LogicalClock()})
	if err != nil {
		log.Fatal(err)
	}
	edges := [][2]eagr.NodeID{
		{0, 1}, {1, 2}, {2, 0}, // triangle 0-1-2
		{2, 3}, {3, 4}, {4, 2}, // triangle 2-3-4
		{4, 5}, // a tail
	}
	for i, e := range edges {
		if err := ing.SendEvent(eagr.NewEdgeAdd(e[0], e[1], 0)); err != nil {
			log.Fatal(err)
		}
		// Interleave content; topology queries never see these.
		if err := ing.Send(e[0], int64(10*i)); err != nil {
			log.Fatal(err)
		}
	}
	if err := ing.Flush(); err != nil {
		log.Fatal(err)
	}

	for v := eagr.NodeID(0); v < 6; v++ {
		tr, err := triangles.Read(v)
		if err != nil {
			log.Fatal(err)
		}
		wd, err := wedges.Read(v)
		if err != nil {
			log.Fatal(err)
		}
		cc := 0.0
		if wd.Scalar > 0 {
			cc = float64(tr.Scalar) / float64(wd.Scalar)
		}
		fmt.Printf("user %d: triangles=%d wedges=%d clustering=%.2f\n",
			v, tr.Scalar, wd.Scalar, cc)
	}

	// Ego 2 bridges both triangles. Removing 2-0 breaks one of them — the
	// incremental delta updates egos 0, 1 and 2 and nothing else.
	if err := ing.SendEvent(eagr.NewEdgeRemove(2, 0, 0)); err != nil {
		log.Fatal(err)
	}
	if err := ing.Flush(); err != nil {
		log.Fatal(err)
	}
	tr, _ := triangles.Read(2)
	fmt.Printf("user 2 after cutting 2-0: triangles=%d (bridge ego keeps the 2-3-4 triangle)\n", tr.Scalar)
	if err := ing.Close(); err != nil {
		log.Fatal(err)
	}
}
