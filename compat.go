package eagr

import "repro/internal/core"

// System is the pre-Session single-query façade: one compiled query over
// one graph. It is now a thin shim over a one-query Session.
//
// Deprecated: use Open to create a multi-query Session and Session.Register
// to obtain a Query handle. A Session hosts many queries on one shared
// graph (sharing partial aggregators between compatible ones) and adds
// continuous-query subscriptions, none of which System can express.
type System struct {
	sess *Session
	q    *Query
}

// OpenQuery compiles a single query over g and returns the legacy System
// façade (the signature `Open(g, spec, opts...)` of earlier releases).
//
// Deprecated: use Open + Session.Register. The handle returned by Register
// carries the same read surface (Read, ReadInto, Stats), and the Session
// carries the write/structural surface.
func OpenQuery(g *Graph, spec QuerySpec, opts ...Options) (*System, error) {
	sess, err := Open(g, opts...)
	if err != nil {
		return nil, err
	}
	q, err := sess.Register(spec)
	if err != nil {
		return nil, err
	}
	return &System{sess: sess, q: q}, nil
}

// Session returns the underlying one-query session, easing migration.
func (s *System) Session() *Session { return s.sess }

// Query returns the underlying query handle, easing migration.
func (s *System) Query() *Query { return s.q }

// Write ingests a content update (a write on v) with a caller-supplied
// timestamp (used by time-based windows).
func (s *System) Write(v NodeID, value int64, ts int64) error {
	return s.sess.Write(v, value, ts)
}

// WriteBatch ingests a batch of content writes through the engine's
// sharded parallel write pool.
func (s *System) WriteBatch(events []Event) error { return s.sess.WriteBatch(events) }

// Read returns the current value of the standing query at v.
func (s *System) Read(v NodeID) (Result, error) { return s.q.Read(v) }

// ReadInto evaluates the standing query at v into a caller-provided result.
func (s *System) ReadInto(v NodeID, res *Result) error { return s.q.ReadInto(v, res) }

// AddEdge applies a structural edge addition u→v and incrementally repairs
// the overlay.
func (s *System) AddEdge(u, v NodeID) error { return s.sess.AddEdge(u, v) }

// RemoveEdge applies a structural edge deletion.
func (s *System) RemoveEdge(u, v NodeID) error { return s.sess.RemoveEdge(u, v) }

// AddNode adds a fresh node to the data graph and overlay.
func (s *System) AddNode() (NodeID, error) { return s.sess.AddNode() }

// RemoveNode deletes a node and its edges everywhere.
func (s *System) RemoveNode(v NodeID) error { return s.sess.RemoveNode(v) }

// Rebalance applies the adaptive dataflow scheme (§4.8) using the activity
// observed since the last call, returning the number of decision flips.
func (s *System) Rebalance() (int, error) { return s.sess.Rebalance() }

// Stats returns current overlay and configuration statistics.
func (s *System) Stats() Stats { return s.q.Stats() }

// Internal exposes the underlying core system for advanced use (runners,
// benchmarks, custom cost models).
func (s *System) Internal() *core.System { return s.q.Internal() }
