// Package eagr is a Go implementation of EAGr (Mondal & Deshpande, SIGMOD
// 2014): a system for supporting large numbers of continuous and
// quasi-continuous ego-centric aggregate queries over large, dynamic
// graphs.
//
// An ego-centric aggregate query ⟨F, w, N, pred⟩ continuously computes, for
// every graph node v with pred(v), the aggregate F over the sliding window
// w of the content streams of v's neighborhood N(v). EAGr compiles such a
// query into an aggregation overlay graph — a DAG of writers, partial
// aggregators and readers that shares partial aggregates across queries —
// and annotates every overlay node with a push (incrementally maintained)
// or pull (computed on demand) decision chosen optimally by a max-flow
// computation over expected read/write frequencies.
//
// Basic usage:
//
//	g := eagr.NewGraph(n)            // build the data graph
//	g.AddEdge(u, v)                  // v's ego network gains u
//	sys, err := eagr.Open(g, eagr.QuerySpec{Aggregate: "sum"})
//	sys.Write(u, 42, ts)             // content update on u
//	res, err := sys.Read(v)          // F(N(v)) right now
//
// See the examples directory for complete programs and DESIGN.md for the
// mapping from the paper's sections to packages.
package eagr

import (
	"fmt"

	"repro/internal/agg"
	"repro/internal/construct"
	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/graph"
)

// NodeID identifies a node in the data graph.
type NodeID = graph.NodeID

// Result is a finalized aggregate answer.
type Result = agg.Result

// Graph is the dynamic data graph G(V,E).
type Graph = graph.Graph

// NewGraph returns a graph pre-populated with nodes 0..n-1.
func NewGraph(n int) *Graph { return graph.NewWithNodes(n) }

// Aggregate is the user-defined aggregate interface (paper §2.2.3); see
// RegisterAggregate for installing custom aggregates.
type Aggregate = agg.Aggregate

// PAO is the partial aggregate object maintained at overlay nodes.
type PAO = agg.PAO

// Properties describe an aggregate's algebraic structure (which overlay
// optimizations are legal for it).
type Properties = agg.Properties

// RegisterAggregate installs a user-defined aggregate under the given name
// so QuerySpec.Aggregate can refer to it.
func RegisterAggregate(name string, factory func(param int) Aggregate) {
	agg.Register(name, agg.Factory(factory))
}

// Neighborhood is the neighborhood selection function N of a query; use
// KHop or Filtered for the built-in shapes, or implement the interface for
// custom ego networks.
type Neighborhood = graph.Neighborhood

// KHop returns the neighborhood of nodes that reach v within k hops
// (k=1 gives the in-neighbors of the running example).
func KHop(k int) Neighborhood {
	if k <= 1 {
		return graph.InNeighbors{}
	}
	return graph.KHopIn{K: k}
}

// Filtered restricts a base neighborhood to the candidates accepted by
// keep — the paper's "filtering neighborhoods" (e.g. only geographically
// close neighbors in a spatio-temporal network).
func Filtered(base Neighborhood, keep func(g *Graph, center, candidate NodeID) bool, tag string) Neighborhood {
	return graph.Filtered{Base: base, Keep: keep, Tag: tag}
}

// QuerySpec describes an ego-centric aggregate query in plain values; it is
// resolved into a compiled query by Open.
type QuerySpec struct {
	// Aggregate names the aggregate function: "sum", "count", "avg",
	// "max", "min", "distinct", "topk(k)", or a registered custom name.
	Aggregate string
	// WindowTuples > 0 selects a count-based window of that many values
	// per writer; WindowTime > 0 selects a time-based window. Both zero
	// means most-recent-value (c = 1).
	WindowTuples int
	WindowTime   int64
	// Hops selects the neighborhood: 1 (default) aggregates over 1-hop
	// in-neighbors, 2 over 2-hop in-neighborhoods, etc.
	Hops int
	// Continuous requests continuous rather than quasi-continuous
	// semantics (results maintained on every update).
	Continuous bool
}

// Options tune compilation; the zero value picks sensible defaults
// (automatic overlay algorithm, optimal dataflow decisions, uniform 1:1
// workload estimate).
type Options struct {
	// Algorithm: "vnm", "vnma", "vnmn", "vnmd", "iob", "baseline", or ""
	// for automatic selection.
	Algorithm string
	// Mode: "dataflow" (optimal, default), "greedy", "all-push",
	// "all-pull".
	Mode string
	// Iterations for overlay construction (default 10).
	Iterations int
	// SplitNodes enables partial pre-computation by node splitting.
	SplitNodes bool
	// ReadFreq/WriteFreq, when non-nil, give expected per-node read and
	// write frequencies for the dataflow decisions.
	ReadFreq, WriteFreq []float64
	// Neighborhood overrides QuerySpec.Hops with a custom neighborhood
	// function (e.g. a Filtered neighborhood).
	Neighborhood Neighborhood
	// MaxReadCost, when positive, bounds every reader's estimated
	// on-demand read cost (in cost-model units); pull subtrees over the
	// bound are pre-computed instead.
	MaxReadCost float64
}

// System is a compiled, executable EAGr instance.
type System struct {
	inner *core.System
}

// Open compiles spec over g and returns a ready system.
func Open(g *Graph, spec QuerySpec, opts ...Options) (*System, error) {
	var o Options
	if len(opts) > 1 {
		return nil, fmt.Errorf("eagr: at most one Options value")
	}
	if len(opts) == 1 {
		o = opts[0]
	}
	a, err := agg.Parse(specOrDefault(spec.Aggregate, "sum"))
	if err != nil {
		return nil, err
	}
	q := core.Query{Aggregate: a, Continuous: spec.Continuous}
	switch {
	case spec.WindowTuples > 0:
		q.Window = agg.NewTupleWindow(spec.WindowTuples)
	case spec.WindowTime > 0:
		q.Window = agg.NewTimeWindow(spec.WindowTime)
	}
	if spec.Hops > 1 {
		q.Neighborhood = graph.KHopIn{K: spec.Hops}
	}
	if o.Neighborhood != nil {
		q.Neighborhood = o.Neighborhood
	}
	co := core.Options{
		Algorithm:   o.Algorithm,
		Mode:        core.Mode(specOrDefault(o.Mode, string(core.ModeDataflow))),
		SplitNodes:  o.SplitNodes,
		MaxReadCost: o.MaxReadCost,
		Construct:   construct.Config{Iterations: o.Iterations},
	}
	if o.ReadFreq != nil || o.WriteFreq != nil {
		wl := dataflow.NewWorkload(g.MaxID())
		copy(wl.Read, o.ReadFreq)
		copy(wl.Write, o.WriteFreq)
		co.Workload = wl
	}
	inner, err := core.Compile(g, q, co)
	if err != nil {
		return nil, err
	}
	return &System{inner: inner}, nil
}

func specOrDefault(s, d string) string {
	if s == "" {
		return d
	}
	return s
}

// Write ingests a content update (a write on v) with a caller-supplied
// timestamp (used by time-based windows).
func (s *System) Write(v NodeID, value int64, ts int64) error {
	return s.inner.Write(v, value, ts)
}

// Event is a single element of the combined data stream, used with
// WriteBatch for high-throughput ingestion.
type Event = graph.Event

// NewWrite builds a content-write event for WriteBatch.
func NewWrite(v NodeID, value int64, ts int64) Event {
	return graph.Event{Kind: graph.ContentWrite, Node: v, Value: value, TS: ts}
}

// WriteBatch ingests a batch of content writes through the engine's
// sharded parallel write pool. Updates to the same node keep their batch
// order; distinct nodes ingest in parallel across GOMAXPROCS workers.
func (s *System) WriteBatch(events []Event) error {
	return s.inner.WriteBatch(events)
}

// Read returns the current value of the standing query at v.
func (s *System) Read(v NodeID) (Result, error) { return s.inner.Read(v) }

// ReadInto evaluates the standing query at v into a caller-provided result.
// List-valued answers (TOP-K) reuse res.List's backing array when capacity
// allows, so a hot read loop that retains res allocates nothing; *res is
// overwritten on every call.
func (s *System) ReadInto(v NodeID, res *Result) error { return s.inner.ReadInto(v, res) }

// AddEdge applies a structural edge addition u→v (v's ego network gains u
// under the default neighborhood) and incrementally repairs the overlay.
func (s *System) AddEdge(u, v NodeID) error { return s.inner.AddGraphEdge(u, v) }

// RemoveEdge applies a structural edge deletion.
func (s *System) RemoveEdge(u, v NodeID) error { return s.inner.RemoveGraphEdge(u, v) }

// AddNode adds a fresh node to the data graph and overlay.
func (s *System) AddNode() (NodeID, error) { return s.inner.AddGraphNode() }

// RemoveNode deletes a node and its edges everywhere.
func (s *System) RemoveNode(v NodeID) error { return s.inner.RemoveGraphNode(v) }

// Rebalance applies the adaptive dataflow scheme (§4.8) using the activity
// observed since the last call, returning the number of decision flips.
// Rebalancing is fully online: concurrent Write/WriteBatch/Read traffic
// keeps flowing while flipped decisions are resynchronized (the engine
// replays concurrently applied deltas across its snapshot cutover).
func (s *System) Rebalance() (int, error) { return s.inner.Rebalance() }

// Stats summarizes the compiled system.
type Stats struct {
	Writers, Readers, Partials int
	Edges, NegativeEdges       int
	SharingIndex               float64
	AvgDepth                   float64
	Algorithm                  string
	Mode                       string
	Maintainable               bool
}

// Stats returns current overlay and configuration statistics.
func (s *System) Stats() Stats {
	st := s.inner.Stats()
	return Stats{
		Writers:       st.Overlay.Writers,
		Readers:       st.Overlay.Readers,
		Partials:      st.Overlay.Partials,
		Edges:         st.Overlay.Edges,
		NegativeEdges: st.Overlay.NegEdges,
		SharingIndex:  st.Overlay.SharingIndex,
		AvgDepth:      st.Overlay.AvgDepth,
		Algorithm:     st.Algorithm,
		Mode:          string(st.Mode),
		Maintainable:  st.Maintainable,
	}
}

// Internal exposes the underlying core system for advanced use (runners,
// benchmarks, custom cost models).
func (s *System) Internal() *core.System { return s.inner }
