// Package eagr is a Go implementation of EAGr (Mondal & Deshpande, SIGMOD
// 2014): a system for supporting large numbers of continuous and
// quasi-continuous ego-centric aggregate queries over large, dynamic
// graphs.
//
// An ego-centric aggregate query ⟨F, w, N, pred⟩ continuously computes, for
// every graph node v with pred(v), the aggregate F over the sliding window
// w of the content streams of v's neighborhood N(v). EAGr compiles such a
// query into an aggregation overlay graph — a DAG of writers, partial
// aggregators and readers that shares partial aggregates across queries —
// and annotates every overlay node with a push (incrementally maintained)
// or pull (computed on demand) decision chosen optimally by a max-flow
// computation over expected read/write frequencies.
//
// The public API is organized around multi-query Sessions: one Session
// hosts any number of standing queries over one shared dynamic graph, the
// paper's unit of optimization. Queries with identical configuration share
// one compiled overlay outright, and queries with the same
// aggregate/window semantics but different neighborhoods, hop depths or
// reader sets are compiled together into ONE merged overlay over the union
// of their query sets (a "merge family") — partial aggregators shared
// wherever neighborhoods overlap, with each query reading its own
// per-query view. Incompatible queries run side by side over the same
// graph.
//
// Basic usage:
//
//	g := eagr.NewGraph(n)             // build the data graph
//	g.AddEdge(u, v)                   // v's ego network gains u
//	sess, err := eagr.Open(g)         // a multi-query session
//	sums, err := sess.Register(eagr.QuerySpec{Aggregate: "sum"})
//	sess.Write(u, 42, ts)             // content update, fans out to all queries
//	res, err := sums.Read(v)          // F(N(v)) right now, for this query
//
// Data enters as ONE interleaved stream, the paper's model (§2.1): content
// writes and structural changes in stream order. The streaming front door
// is an Ingestor — batched, backpressured, and the source of time:
//
//	ing, err := sess.Ingest(eagr.IngestOptions{})
//	ing.Send(u, 42)                            // auto-timestamped write
//	ing.SendEvent(eagr.NewEdgeAdd(u, v, 0))    // structural, same stream
//	ing.Flush()                                // synchronize when needed
//
// Batches auto-flush by size and interval; consecutive content writes take
// the sharded parallel path while consecutive structural events coalesce
// into one overlay repair per query (Session.ApplyBatch is the same
// unified path for caller-assembled batches). The Ingestor's low watermark
// — max observed timestamp minus the configured lateness — expires
// time-based windows automatically, so time-windowed queries advance with
// the stream instead of with hand-threaded ExpireAll calls.
//
// Continuous queries push results to subscribers instead of waiting to be
// read, including the expiry updates the watermark produces:
//
//	alerts, _ := sess.Register(eagr.QuerySpec{Aggregate: "count", Continuous: true})
//	ch, cancel, err := alerts.Subscribe(64)
//	for u := range ch { ... }        // {Node, Result, TS} on every relevant write
//
// See the examples directory for complete programs and DESIGN.md for the
// mapping from the paper's sections to packages.
package eagr

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/agg"
	"repro/internal/autotune"
	"repro/internal/construct"
	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/topo"
)

// NodeID identifies a node in the data graph.
type NodeID = graph.NodeID

// Result is a finalized aggregate answer.
type Result = agg.Result

// Graph is the dynamic data graph G(V,E).
type Graph = graph.Graph

// NewGraph returns a graph pre-populated with nodes 0..n-1.
func NewGraph(n int) *Graph { return graph.NewWithNodes(n) }

// Aggregate is the user-defined aggregate interface (paper §2.2.3); see
// RegisterAggregate for installing custom aggregates.
type Aggregate = agg.Aggregate

// PAO is the partial aggregate object maintained at overlay nodes.
type PAO = agg.PAO

// Properties describe an aggregate's algebraic structure (which overlay
// optimizations are legal for it).
type Properties = agg.Properties

// WirePAO is a flat, JSON-serializable snapshot of one partial aggregate —
// the unit a sharded deployment ships from shards to a coordinator (see
// Query.ReadWire and internal/shard).
type WirePAO = agg.WirePAO

// RegisterAggregate installs a user-defined aggregate under the given name
// so QuerySpec.Aggregate can refer to it.
func RegisterAggregate(name string, factory func(param int) Aggregate) {
	agg.Register(name, agg.Factory(factory))
}

// Neighborhood is the neighborhood selection function N of a query; use
// KHop or Filtered for the built-in shapes, or implement the interface for
// custom ego networks.
type Neighborhood = graph.Neighborhood

// KHop returns the neighborhood of nodes that reach v within k hops
// (k=1 gives the in-neighbors of the running example).
func KHop(k int) Neighborhood {
	if k <= 1 {
		return graph.InNeighbors{}
	}
	return graph.KHopIn{K: k}
}

// Filtered restricts a base neighborhood to the candidates accepted by
// keep — the paper's "filtering neighborhoods" (e.g. only geographically
// close neighbors in a spatio-temporal network). The tag identifies the
// filter: queries registered on one Session share compiled state only when
// their tags (and the rest of their configuration) match, so distinct
// filters need distinct tags.
func Filtered(base Neighborhood, keep func(g *Graph, center, candidate NodeID) bool, tag string) Neighborhood {
	return graph.Filtered{Base: base, Keep: keep, Tag: tag}
}

// Typed errors returned at the API boundary. Use errors.Is; the concrete
// messages carry context (which node, which query).
var (
	// ErrUnknownNode reports an operation on a node the session's graph or
	// a query's overlay does not know (never added, or already removed).
	ErrUnknownNode = exec.ErrUnknownNode
	// ErrQueryClosed reports an operation on a retired query handle.
	ErrQueryClosed = errors.New("eagr: query closed")
	// ErrIncompatibleQuery reports a QuerySpec/Options combination that
	// cannot be compiled (unknown aggregate, or an overlay algorithm whose
	// correctness precondition the aggregate does not meet).
	ErrIncompatibleQuery = core.ErrIncompatible
	// ErrIncompatibleMerge reports a query that could not be merged into
	// (or retired from) a merge family's shared overlay. It wraps
	// ErrIncompatibleQuery, so errors.Is on either matches.
	ErrIncompatibleMerge = core.ErrIncompatibleMerge
	// ErrConflictingWindow reports a QuerySpec that sets both WindowTuples
	// and WindowTime; a query has exactly one window.
	ErrConflictingWindow = errors.New("eagr: QuerySpec sets both WindowTuples and WindowTime")
)

// QuerySpec describes an ego-centric aggregate query in plain values; it is
// resolved into a compiled query by Session.Register.
type QuerySpec struct {
	// Aggregate names the aggregate function: "sum", "count", "avg",
	// "max", "min", "distinct", "topk(k)", or a registered custom name.
	Aggregate string
	// WindowTuples > 0 selects a count-based window of that many values
	// per writer; WindowTime > 0 selects a time-based window. Both zero
	// means most-recent-value (c = 1); setting both is ErrConflictingWindow.
	WindowTuples int
	WindowTime   int64
	// Hops selects the neighborhood: 1 (default) aggregates over 1-hop
	// in-neighbors, 2 over 2-hop in-neighborhoods, etc.
	Hops int
	// Continuous requests continuous rather than quasi-continuous
	// semantics (results maintained on every update); continuous queries
	// compile all-push, so Query.Subscribe covers every reader.
	Continuous bool
}

// Options tune compilation; the zero value picks sensible defaults
// (automatic overlay algorithm, optimal dataflow decisions, uniform 1:1
// workload estimate). Options passed to Open become the session default;
// Options passed to Register override them for that query.
type Options struct {
	// Algorithm: "vnm", "vnma", "vnmn", "vnmd", "iob", "baseline", or ""
	// for automatic selection.
	Algorithm string
	// Mode: "dataflow" (optimal, default), "greedy", "all-push",
	// "all-pull".
	Mode string
	// Iterations for overlay construction (default 10).
	Iterations int
	// SplitNodes enables partial pre-computation by node splitting.
	SplitNodes bool
	// ReadFreq/WriteFreq, when non-nil, give expected per-node read and
	// write frequencies for the dataflow decisions. Queries with explicit
	// frequencies never share compiled state.
	ReadFreq, WriteFreq []float64
	// Neighborhood overrides QuerySpec.Hops with a custom neighborhood
	// function (e.g. a Filtered neighborhood).
	Neighborhood Neighborhood
	// MaxReadCost, when positive, bounds every reader's estimated
	// on-demand read cost (in cost-model units); pull subtrees over the
	// bound are pre-computed instead.
	MaxReadCost float64
	// Autotune, when non-nil, starts the session's self-driving adaptivity
	// controller (see AutotuneOptions and WithAutotune). It is a
	// session-level setting: only the Options value passed to Open (or
	// OpenDurable) is consulted, never per-Register overrides, and it has
	// no effect on query sharing keys.
	Autotune *AutotuneOptions
}

// AutotuneOptions configure the background adaptivity controller: a
// per-session goroutine that samples the engines' live push/pull
// observations into a decayed workload estimate and re-optimizes running
// overlays online — incremental frontier flips, cold-view demotion in
// merged families, and full re-plan cutovers when the observed-workload
// cost of the current decisions degrades past a threshold. All actions ride
// the online resync: ingestion and reads never pause. Zero fields take
// documented defaults.
type AutotuneOptions struct {
	// Interval is the controller's sampling period (default 2s).
	Interval time.Duration
	// Decay is the per-tick retention of the workload estimate in [0,1)
	// (default 0.5; higher remembers longer).
	Decay float64
	// MinActivity is the decayed observation count required before the
	// controller retargets views or re-plans (default 256).
	MinActivity float64
	// ColdFactor/HotFactor bound the view hysteresis band as fractions of
	// the mean per-view read rate (defaults 0.1 and 0.5): a push view
	// colder than ColdFactor×mean demotes to pull, a demoted view hotter
	// than HotFactor×mean promotes back.
	ColdFactor, HotFactor float64
	// DegradationRatio triggers a full re-plan cutover when the current
	// decisions cost more than this multiple of a fresh plan under the
	// observed workload (default 1.15).
	DegradationRatio float64
	// Cooldown is the minimum time between re-plan cutovers on one overlay
	// (default 30s; negative disables the cooldown).
	Cooldown time.Duration
}

// WithAutotune returns an Options value enabling the self-driving
// adaptivity controller, for passing to Open:
//
//	sess, err := eagr.Open(g, eagr.WithAutotune(eagr.AutotuneOptions{}))
//
// To combine with other session defaults, set Options.Autotune directly.
func WithAutotune(a AutotuneOptions) Options {
	return Options{Autotune: &a}
}

// Update is one continuous-query delivery: the standing query at Node
// changed to Result because of a write with timestamp TS somewhere in
// Node's ego network. See Query.Subscribe.
type Update = exec.Update

// Session hosts any number of standing ego-centric aggregate queries over
// one shared dynamic graph. Register adds queries at runtime and Query
// handles retire them; content writes fan out to every registered query,
// and structural changes mutate the graph once and repair every query's
// overlay incrementally.
//
// All methods are safe for concurrent use.
type Session struct {
	g        *Graph
	defaults Options
	multi    *core.MultiSystem
	// dur is the durability layer, nil unless the session came from
	// OpenDurable; the mutators check it with one nil test, so the
	// durability-off hot paths stay allocation-free.
	dur *durableState
	// tuner is the self-driving adaptivity controller, nil unless enabled
	// (Options.Autotune or EnableAutotune). The write/read hot paths never
	// touch it; it samples the engines' always-on observation counters from
	// its own goroutine.
	tuner   *autotune.Controller
	tunerMu sync.Mutex

	// topoEng hosts the session's topology-valued views (internal/topo),
	// created lazily on the first topo Register and attached to the graph's
	// structural-mutation path as a listener. Content writes never touch it
	// — the listener hook fires on structural events and watermark advances
	// only — so sessions without topo queries (and content-only batches in
	// sessions with them) pay nothing.
	topoMu  sync.Mutex
	topoEng *topo.Engine

	mu      sync.Mutex
	queries map[int]*Query
	nextID  int
}

// Open starts a multi-query session over g. The graph is retained (not
// copied); all structural changes must go through the Session's mutation
// methods. An optional Options value becomes the default compile
// configuration for Register.
func Open(g *Graph, opts ...Options) (*Session, error) {
	var o Options
	if len(opts) > 1 {
		return nil, fmt.Errorf("eagr: at most one Options value")
	}
	if len(opts) == 1 {
		o = opts[0]
	}
	s := &Session{
		g:        g,
		defaults: o,
		multi:    core.NewMulti(g),
		queries:  map[int]*Query{},
	}
	if o.Autotune != nil {
		s.EnableAutotune(*o.Autotune)
	}
	return s, nil
}

// EnableAutotune starts the session's background adaptivity controller (see
// AutotuneOptions); it is what Open does when Options.Autotune is set. A
// no-op if the controller is already running. The controller runs until
// StopAutotune.
func (s *Session) EnableAutotune(a AutotuneOptions) {
	s.tunerMu.Lock()
	defer s.tunerMu.Unlock()
	if s.tuner == nil {
		s.tuner = autotune.New(s.multi, autotune.Config{
			Interval:         a.Interval,
			Decay:            a.Decay,
			MinActivity:      a.MinActivity,
			ColdFactor:       a.ColdFactor,
			HotFactor:        a.HotFactor,
			DegradationRatio: a.DegradationRatio,
			Cooldown:         a.Cooldown,
		})
	}
	s.tuner.Start()
}

// StopAutotune halts the background adaptivity controller and waits for any
// in-flight pass to finish. A no-op when the controller never ran;
// idempotent. Counters survive, so SessionStats keeps reporting what the
// controller did, and EnableAutotune can restart it.
func (s *Session) StopAutotune() {
	s.tunerMu.Lock()
	t := s.tuner
	s.tunerMu.Unlock()
	if t != nil {
		t.Stop()
	}
}

// Register compiles spec into a standing query and returns its handle. An
// optional Options value overrides the session defaults for this query.
//
// Queries with identical configuration (same aggregate, window,
// neighborhood and compile options) share one compiled overlay — and its
// partial aggregators — per the paper's sharing construction; the second
// registration of such a query is free. Queries that differ ONLY in their
// neighborhood (hop depth, tagged filter) join the same merge family: the
// family's queries compile into one merged overlay over the union of their
// query sets, sharing partial aggregation work wherever their
// neighborhoods overlap, while this handle reads exactly its own query's
// view. Registering into an existing family extends the merged overlay
// online (ingest keeps flowing). Incompatible queries compile their own
// overlay over the same graph.
func (s *Session) Register(spec QuerySpec, opts ...Options) (*Query, error) {
	o := s.defaults
	if len(opts) > 1 {
		return nil, fmt.Errorf("eagr: at most one Options value")
	}
	if len(opts) == 1 {
		o = opts[0]
	}
	d := s.dur
	if d == nil || d.replaying {
		return s.register(spec, o, 0)
	}
	// Durable path: registration must order exactly against logged batches,
	// so it holds the full durability lock across compile + WAL append.
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, ErrDurabilityClosed
	}
	q, err := s.register(spec, o, 0)
	if err != nil {
		return nil, err
	}
	blob, serializable := encodeQueryRecord(q.id, spec, o)
	if !serializable {
		// Non-serializable options (custom Neighborhood, explicit
		// frequencies): the query runs but does not survive recovery.
		return q, nil
	}
	if _, err := d.log.AppendRegister(uint64(q.id), blob); err != nil {
		_ = q.closeInner()
		return nil, fmt.Errorf("eagr: durable register: %w", err)
	}
	q.durable = true
	return q, nil
}

// register compiles and attaches a query. forcedID > 0 restores a
// recovered query under its original id; 0 allocates the next one.
func (s *Session) register(spec QuerySpec, o Options, forcedID int) (*Query, error) {
	if spec.WindowTuples > 0 && spec.WindowTime > 0 {
		return nil, ErrConflictingWindow
	}
	name := specOrDefault(spec.Aggregate, "sum")
	a, err := agg.Parse(name)
	if err != nil {
		// Not a numeric aggregate: topology-valued aggregates (density,
		// triangles, ego-betweenness, ...) register through internal/topo.
		// The numeric registry wins on a name collision, preserving the
		// behavior of custom aggregates registered before topo existed.
		if ts, terr := topo.Parse(name); terr == nil {
			return s.registerTopo(ts, spec, o, forcedID)
		}
		return nil, fmt.Errorf("eagr: %w: %w", ErrIncompatibleQuery, err)
	}
	q := core.Query{Aggregate: a, Continuous: spec.Continuous}
	switch {
	case spec.WindowTuples > 0:
		q.Window = agg.NewTupleWindow(spec.WindowTuples)
	case spec.WindowTime > 0:
		q.Window = agg.NewTimeWindow(spec.WindowTime)
	}
	if spec.Hops > 1 {
		q.Neighborhood = graph.KHopIn{K: spec.Hops}
	}
	if o.Neighborhood != nil {
		q.Neighborhood = o.Neighborhood
	}
	co := core.Options{
		Algorithm:   o.Algorithm,
		Mode:        core.Mode(specOrDefault(o.Mode, string(core.ModeDataflow))),
		SplitNodes:  o.SplitNodes,
		MaxReadCost: o.MaxReadCost,
		Construct:   construct.Config{Iterations: o.Iterations},
	}
	if o.ReadFreq != nil || o.WriteFreq != nil {
		wl := dataflow.NewWorkload(s.g.MaxID())
		copy(wl.Read, o.ReadFreq)
		copy(wl.Write, o.WriteFreq)
		co.Workload = wl
	}
	full, fam := compatKey(spec, o)
	att, err := s.multi.AttachMerged(full, fam, q, co)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	id := forcedID
	if id <= 0 {
		s.nextID++
		id = s.nextID
	} else if id > s.nextID {
		s.nextID = id
	}
	h := &Query{
		sess:    s,
		id:      id,
		spec:    spec,
		opts:    o,
		fullKey: full,
		att:     att,
		tag:     att.ViewTag(),
		subs:    map[*exec.Subscription]struct{}{},
	}
	h.sysRef = att.System()
	h.sys.Store(h.sysRef)
	s.queries[h.id] = h
	return h, nil
}

// registerTopo attaches a topology-valued query (internal/topo): an
// aggregate over the STRUCTURE of each node's 1-hop undirected ego network,
// fed by the graph's edge churn through the structural-listener hook
// instead of a compiled content overlay. Queries with equal (aggregate,
// window) configurations share one refcounted engine view — the topo form
// of compile-key sharing. QuerySpec.WindowTime selects the recompute
// cadence for recompute-class aggregates (ego-betweenness); incremental
// aggregates are always exact and take no window.
// TopoScale is the fixed-point scale for fractional topology values:
// a Result.Scalar of TopoScale reads as 1.0 (density of a perfect clique,
// one unit of ego-betweenness).
const TopoScale = topo.Scale

// TopoAggregates returns the sorted canonical names of the registered
// topology-valued aggregates ("density", "ego-betweenness", …), the
// structural counterpart of the numeric agg registry.
func TopoAggregates() []string { return topo.Names() }

func (s *Session) registerTopo(ts topo.Spec, spec QuerySpec, o Options, forcedID int) (*Query, error) {
	ta, err := topo.New(ts)
	if err != nil {
		return nil, fmt.Errorf("eagr: %w: %w", ErrIncompatibleQuery, err)
	}
	if spec.WindowTuples > 0 {
		return nil, fmt.Errorf("eagr: %w: topology aggregate %q consumes edge churn, not content tuples — it takes no tuple window", ErrIncompatibleQuery, ts.Name)
	}
	if spec.Hops > 1 || o.Neighborhood != nil {
		return nil, fmt.Errorf("eagr: %w: topology aggregate %q is defined on the 1-hop undirected ego network; custom neighborhoods and hop depths do not apply", ErrIncompatibleQuery, ts.Name)
	}
	if spec.WindowTime > 0 && ta.Incremental() {
		return nil, fmt.Errorf("eagr: %w: topology aggregate %q is maintained incrementally (always exact); a recompute window only applies to scheduled aggregates like ego-betweenness", ErrIncompatibleQuery, ts.Name)
	}
	view, err := s.topoEngine().Acquire(ts, spec.WindowTime)
	if err != nil {
		return nil, fmt.Errorf("eagr: %w: %w", ErrIncompatibleQuery, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	id := forcedID
	if id <= 0 {
		s.nextID++
		id = s.nextID
	} else if id > s.nextID {
		s.nextID = id
	}
	h := &Query{
		sess:     s,
		id:       id,
		spec:     spec,
		opts:     o,
		fullKey:  ts.Key(spec.WindowTime),
		topoView: view,
		subs:     map[*exec.Subscription]struct{}{},
	}
	s.queries[h.id] = h
	return h, nil
}

// topoEngine returns the session's topology engine, creating it on first
// use. Construction runs under the structural mutation lock (the listener
// attach hook), so the engine's bootstrap snapshot of the graph and the
// event stream it observes afterwards are gap- and overlap-free.
func (s *Session) topoEngine() *topo.Engine {
	s.topoMu.Lock()
	defer s.topoMu.Unlock()
	if s.topoEng == nil {
		s.multi.AttachStructuralListener(func(g *graph.Graph) core.StructuralListener {
			s.topoEng = topo.NewEngine(g)
			return s.topoEng
		})
	}
	return s.topoEng
}

// compatKey canonicalizes a query's compile configuration into two sharing
// keys. full is the complete configuration: equal full keys share one
// compiled member outright (the Nth identical registration is free). family
// is everything EXCEPT the neighborhood/reader set — aggregate, window,
// continuity, algorithm, mode, construction knobs: queries with equal
// non-empty family keys but different neighborhoods or hop depths compile
// into ONE merged overlay over the union of their query sets, each reading
// its own per-query view (the paper's cross-query sharing).
//
// Spellings that compile identically map to one key (WindowTuples 0 ≡ 1,
// Hops 0 ≡ 1, empty mode ≡ "dataflow", zero iterations ≡ the construct
// default). Empty keys mean "never share": explicit per-node frequencies
// opt out entirely, and neighborhoods without a stable identity opt out of
// both levels.
func compatKey(spec QuerySpec, o Options) (full, family string) {
	if o.ReadFreq != nil || o.WriteFreq != nil {
		return "", ""
	}
	// Canonical neighborhood identity: Options.Neighborhood overrides
	// spec.Hops exactly as Register does, so QuerySpec{Hops: 2} and
	// Options{Neighborhood: KHop(2)} produce the same key.
	hops := spec.Hops
	if hops < 1 {
		hops = 1
	}
	nbr := fmt.Sprintf("in-%dhop", hops)
	if o.Neighborhood != nil {
		key, ok := neighborhoodKey(o.Neighborhood)
		if !ok {
			return "", ""
		}
		nbr = key
	}
	wc := spec.WindowTuples
	if spec.WindowTime == 0 && wc == 0 {
		wc = 1 // both-zero means most-recent-value: a c=1 tuple window
	}
	it := o.Iterations
	if it <= 0 {
		it = 10 // construct.Config's default
	}
	mode := specOrDefault(o.Mode, string(core.ModeDataflow))
	if spec.Continuous {
		// Compile forces all-push for continuous queries regardless of
		// the requested mode; the key must agree or identically-compiled
		// continuous queries would not share.
		mode = string(core.ModeAllPush)
	}
	family = fmt.Sprintf("agg=%s|wc=%d|wt=%d|cont=%t|alg=%s|mode=%s|it=%d|split=%t|mrc=%g",
		specOrDefault(spec.Aggregate, "sum"), wc, spec.WindowTime,
		spec.Continuous, o.Algorithm, mode,
		it, o.SplitNodes, o.MaxReadCost)
	return family + "|nbr=" + nbr, family
}

// neighborhoodKey canonicalizes a neighborhood's sharing identity. K is
// always spelled out (Name() collapses every K>2 to "in-khop", which would
// wrongly share different depths); a Filtered neighborhood's identity is
// its tag plus its base's identity (the keep function is opaque), and
// untagged filters or custom implementations have none (ok=false: never
// share).
func neighborhoodKey(nb Neighborhood) (string, bool) {
	switch n := nb.(type) {
	case graph.InNeighbors:
		return "in-1hop", true
	case graph.OutNeighbors:
		return "out-1hop", true
	case graph.KHopIn:
		k := n.K
		if k < 1 {
			k = 1
		}
		return fmt.Sprintf("in-%dhop", k), true
	case graph.Filtered:
		if n.Tag == "" {
			return "", false
		}
		base, ok := neighborhoodKey(n.Base)
		if !ok {
			return "", false
		}
		return "filtered:" + base + ":" + n.Tag, true
	default:
		return "", false
	}
}

func specOrDefault(s, d string) string {
	if s == "" {
		return d
	}
	return s
}

// Write ingests a content update (a write on v) with a caller-supplied
// timestamp (used by time-based windows), fanning it out to every
// registered query.
func (s *Session) Write(v NodeID, value int64, ts int64) error {
	if d := s.dur; d != nil && !d.replaying {
		ev := [1]Event{NewWrite(v, value, ts)}
		return d.logged(ev[:], func() error { return s.multi.Write(v, value, ts) })
	}
	return s.multi.Write(v, value, ts)
}

// Event is a single element of the combined data stream (§2.1): one
// interleaved sequence of content writes and structural changes, ingested
// with ApplyBatch, an Ingestor, or the content-only WriteBatch.
type Event = graph.Event

// NewWrite builds a content-write event: node v appends value to its
// content stream at ts.
func NewWrite(v NodeID, value int64, ts int64) Event {
	return graph.Event{Kind: graph.ContentWrite, Node: v, Value: value, TS: ts}
}

// NewEdgeAdd builds a structural event adding the edge u→v (v's ego
// network gains u under the default neighborhood).
func NewEdgeAdd(u, v NodeID, ts int64) Event {
	return graph.Event{Kind: graph.EdgeAdd, Node: u, Peer: v, TS: ts}
}

// NewEdgeRemove builds a structural event removing the edge u→v.
func NewEdgeRemove(u, v NodeID, ts int64) Event {
	return graph.Event{Kind: graph.EdgeRemove, Node: u, Peer: v, TS: ts}
}

// NewNodeAdd builds a structural event allocating a fresh node (the id is
// assigned at apply time; deleted ids are reused).
func NewNodeAdd(ts int64) Event {
	return graph.Event{Kind: graph.NodeAdd, TS: ts}
}

// NewNodeRemove builds a structural event deleting node v and its edges.
func NewNodeRemove(v NodeID, ts int64) Event {
	return graph.Event{Kind: graph.NodeRemove, Node: v, TS: ts}
}

// ApplyBatch ingests a mixed batch of content and structural events in
// stream order — the paper's single interleaved data stream. Runs of
// consecutive content writes take each query engine's sharded parallel
// fast path (per-node order preserved, distinct nodes in parallel); runs
// of consecutive structural events mutate the graph event by event but
// coalesce into ONE overlay repair and engine republish per query, so a
// burst of churn costs one repair rather than one per event.
//
// Events that cannot apply (adding an existing edge, removing a dead node)
// are skipped with their errors joined into the returned error; the rest
// of the batch still applies — the same end state as looping the
// sequential mutators and collecting errors. The final results are
// identical to applying the batch one event at a time.
func (s *Session) ApplyBatch(events []Event) error {
	if d := s.dur; d != nil && !d.replaying {
		return d.logged(events, func() error { return mapNodeErr(s.multi.ApplyBatch(events)) })
	}
	return mapNodeErr(s.multi.ApplyBatch(events))
}

// ApplyBatchNodes is ApplyBatch additionally returning the node ids its
// NodeAdd events allocated, in event order. Deleted ids are reused, so a
// caller that needs to write to (or wire edges onto) a node it just
// streamed in cannot derive the id from the graph size — use this variant,
// or the synchronous AddNode. (The asynchronous Ingestor cannot return
// per-event ids; streams that create nodes and immediately address them
// should allocate through ApplyBatchNodes or AddNode first.)
func (s *Session) ApplyBatchNodes(events []Event) ([]NodeID, error) {
	if d := s.dur; d != nil && !d.replaying {
		var added []NodeID
		err := d.logged(events, func() error {
			var aerr error
			added, aerr = s.multi.ApplyBatchNodes(events)
			return mapNodeErr(aerr)
		})
		return added, err
	}
	added, err := s.multi.ApplyBatchNodes(events)
	return added, mapNodeErr(err)
}

// WriteBatch is the content-only wrapper of ApplyBatch: it ingests a batch
// of content writes through each query engine's sharded parallel write
// pool, skipping any non-write events instead of applying them. Updates to
// the same node keep their batch order; distinct nodes ingest in parallel
// across GOMAXPROCS workers.
func (s *Session) WriteBatch(events []Event) error {
	if d := s.dur; d != nil && !d.replaying {
		// Log only the writes WriteBatch applies, so the record replays
		// identically through ApplyBatch (which would APPLY structural
		// events rather than skip them).
		return d.logged(contentOnly(events), func() error { return s.multi.WriteBatch(events) })
	}
	return s.multi.WriteBatch(events)
}

// ExpireAll advances every query's time-based windows to ts, propagating
// expirations (and subscriber notifications) through the push regions.
// Sessions ingesting through an Ingestor don't call this: the Ingestor's
// watermark drives expiry automatically.
func (s *Session) ExpireAll(ts int64) {
	if d := s.dur; d != nil && !d.replaying {
		// Expiry is LOGGED, not recomputed at recovery: replay reproduces
		// exactly the expiries that ran, independent of the lateness
		// configured by whatever Ingestor exists after restart.
		d.mu.RLock()
		if !d.closed {
			if _, err := d.log.AppendExpire(ts); err == nil {
				casMax(&d.lastExpire, ts)
			}
		}
		s.multi.ExpireAll(ts)
		d.mu.RUnlock()
		return
	}
	s.multi.ExpireAll(ts)
}

// AddEdge applies a structural edge addition u→v (v's ego network gains u
// under the default neighborhood) and incrementally repairs every query's
// overlay.
func (s *Session) AddEdge(u, v NodeID) error {
	if d := s.dur; d != nil && !d.replaying {
		ev := [1]Event{NewEdgeAdd(u, v, 0)}
		return d.logged(ev[:], func() error { return mapNodeErr(s.multi.AddEdge(u, v)) })
	}
	return mapNodeErr(s.multi.AddEdge(u, v))
}

// RemoveEdge applies a structural edge deletion.
func (s *Session) RemoveEdge(u, v NodeID) error {
	if d := s.dur; d != nil && !d.replaying {
		ev := [1]Event{NewEdgeRemove(u, v, 0)}
		return d.logged(ev[:], func() error { return mapNodeErr(s.multi.RemoveEdge(u, v)) })
	}
	return mapNodeErr(s.multi.RemoveEdge(u, v))
}

// AddNode adds a fresh node to the data graph and every query's overlay.
func (s *Session) AddNode() (NodeID, error) {
	if d := s.dur; d != nil && !d.replaying {
		// Replay allocates the same id: the checkpointed graph carries its
		// free list, and NodeAdd events apply in log order.
		var id NodeID
		ev := [1]Event{NewNodeAdd(0)}
		err := d.logged(ev[:], func() error {
			var aerr error
			id, aerr = s.multi.AddNode()
			return aerr
		})
		return id, err
	}
	return s.multi.AddNode()
}

// RemoveNode deletes a node and its edges everywhere.
func (s *Session) RemoveNode(v NodeID) error {
	if d := s.dur; d != nil && !d.replaying {
		ev := [1]Event{NewNodeRemove(v, 0)}
		return d.logged(ev[:], func() error { return mapNodeErr(s.multi.RemoveNode(v)) })
	}
	return mapNodeErr(s.multi.RemoveNode(v))
}

// mapNodeErr converts the graph package's not-found errors into the
// API-boundary typed error, preserving the original context.
func mapNodeErr(err error) error {
	if err != nil && errors.Is(err, graph.ErrNodeNotFound) {
		return fmt.Errorf("eagr: %w: %w", ErrUnknownNode, err)
	}
	return err
}

// Rebalance applies the adaptive dataflow scheme (§4.8) to every query
// using the activity observed since the last call, returning the total
// number of decision flips. Rebalancing is fully online: concurrent
// Write/WriteBatch/Read traffic keeps flowing while flipped decisions are
// resynchronized.
func (s *Session) Rebalance() (int, error) { return s.multi.Rebalance() }

// Graph returns the session's shared data graph. Mutate it only through
// the Session's structural methods.
func (s *Session) Graph() *Graph { return s.g }

// Defaults returns the session's default compile Options (the value passed
// to Open). Callers that accept partial per-query overrides should merge
// them over this value before Register, so equivalent queries keep equal
// configurations and share compiled state.
func (s *Session) Defaults() Options { return s.defaults }

// Queries returns the live query handles, ordered by registration.
func (s *Session) Queries() []*Query {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Query, 0, len(s.queries))
	for _, q := range s.queries {
		out = append(out, q)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// Query returns the live handle with the given ID, or nil.
func (s *Session) Query(id int) *Query {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queries[id]
}

// SessionStats summarizes a session: how many queries it hosts, how many
// compiled overlays they share (Groups < Queries means partial-aggregate
// sharing is active), and the overlay totals across all groups.
type SessionStats struct {
	Queries int
	// Groups is the number of distinct compiled overlays; queries in one
	// group share all partial aggregators.
	Groups int
	// MergedFamilies counts the overlays hosting more than one member
	// query (the merged multi-query overlays), and MergedQueries the
	// member queries they host: sharing beyond exact configuration twins.
	MergedFamilies int
	MergedQueries  int
	// FamilyOverflows counts registrations that found their merge family at
	// the 64-member tag-space cap and opened a fresh overlay instead of
	// joining the shared one — nonzero means cross-query sharing is
	// degrading under query volume.
	FamilyOverflows int64
	Writers         int
	Readers         int
	Partials        int
	Edges           int
	// DroppedUpdates counts subscription deliveries discarded because
	// consumers fell behind, summed over all live queries.
	DroppedUpdates int64
	// TopoViews is the number of live topology-valued views (internal/topo)
	// the session's topo queries share; 0 when no topo query is registered.
	TopoViews int
	// Adaptivity is the session's live adaptivity state — observation
	// totals and last-rebalance outcome — populated whether or not the
	// autotune controller is running (POST /rebalance feeds it too).
	Adaptivity AdaptivityStats
	// Autotune reports the self-driving adaptivity controller; zero with
	// Enabled=false when it was never started.
	Autotune AutotuneStats
}

// AdaptivityStats aggregates the adaptivity telemetry of every compiled
// overlay in the session.
type AdaptivityStats struct {
	// PushObserved/PullObserved are total push/pull observations drained
	// from the engines' per-node counters (by rebalances or the autotune
	// controller) since the session opened.
	PushObserved, PullObserved int64
	// Rebalances counts rebalance passes across all overlays; LastFlips
	// sums each overlay's most recent pass's flips, and LastRebalanceNano
	// is the wall-clock time (UnixNano) of the newest pass anywhere (0 if
	// none ran).
	Rebalances        int64
	LastFlips         int
	LastRebalanceNano int64
}

// AutotuneStats is the public snapshot of the background adaptivity
// controller's counters (see AutotuneOptions for the knobs behind them).
type AutotuneStats struct {
	// Enabled reports whether the controller's loop is currently running.
	Enabled bool
	// Ticks counts controller passes; Flips the frontier decision flips it
	// applied; ViewDemotions/ViewPromotions the merged-family member views
	// it retargeted; Reoptimizes the full re-plan cutovers.
	Ticks, Flips, ViewDemotions, ViewPromotions, Reoptimizes int64
	// LastTrigger describes the most recent action ("" if none yet).
	LastTrigger string
	// EstimatedCost/PlanCost are the latest degradation check: the cost of
	// the current decisions under the observed workload vs a fresh plan.
	EstimatedCost, PlanCost float64
}

// Stats returns current session-wide statistics.
func (s *Session) Stats() SessionStats {
	st := SessionStats{Groups: s.multi.NumGroups(), FamilyOverflows: s.multi.FamilyOverflows()}
	st.MergedFamilies, st.MergedQueries = s.multi.NumMergedFamilies()
	for _, sys := range s.multi.Systems() {
		ov := sys.Stats().Overlay
		st.Writers += ov.Writers
		st.Readers += ov.Readers
		st.Partials += ov.Partials
		st.Edges += ov.Edges
		ad := sys.AdaptivityStats()
		st.Adaptivity.PushObserved += ad.PushObserved
		st.Adaptivity.PullObserved += ad.PullObserved
		st.Adaptivity.Rebalances += ad.Rebalances
		st.Adaptivity.LastFlips += ad.LastFlips
		if ad.LastRebalanceNano > st.Adaptivity.LastRebalanceNano {
			st.Adaptivity.LastRebalanceNano = ad.LastRebalanceNano
		}
	}
	s.tunerMu.Lock()
	if t := s.tuner; t != nil {
		ts := t.Stats()
		st.Autotune = AutotuneStats{
			Enabled:        ts.Running,
			Ticks:          ts.Ticks,
			Flips:          ts.Flips,
			ViewDemotions:  ts.ViewDemotions,
			ViewPromotions: ts.ViewPromotions,
			Reoptimizes:    ts.Reoptimizes,
			LastTrigger:    ts.LastTrigger,
			EstimatedCost:  ts.EstimatedCost,
			PlanCost:       ts.PlanCost,
		}
	}
	s.tunerMu.Unlock()
	s.topoMu.Lock()
	if s.topoEng != nil {
		st.TopoViews = s.topoEng.Views()
	}
	s.topoMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	st.Queries = len(s.queries)
	for _, q := range s.queries {
		st.DroppedUpdates += q.dropped()
	}
	return st
}

// Query is the handle of one registered standing query: it carries the
// query's read surface (Read, ReadInto, Stats), its continuous-delivery
// surface (Subscribe), and its lifecycle (Close). Handles are safe for
// concurrent use.
type Query struct {
	sess *Session
	id   int
	spec QuerySpec
	// opts is the resolved compile configuration and fullKey its sharing
	// identity, retained so durable sessions can checkpoint the
	// registration; durable marks queries whose registration is in the
	// WAL (see Query.Durable).
	opts    Options
	fullKey string
	durable bool
	// tag is the query's member view within its (possibly merged) compiled
	// system: reads, subscriptions and coverage checks address exactly
	// this query's readers even when several queries share one overlay.
	tag int32

	// sys caches the compiled system; nil after Close, which is how the
	// read hot path detects retirement without taking a lock. sysRef is
	// the same pointer, never cleared: subscription teardown needs it
	// when a cancel races Close (the cancel may unsubscribe after Close
	// stored nil into sys, and the channel must still be closed).
	sys    atomic.Pointer[core.System]
	sysRef *core.System

	// topoView is non-nil for topology-valued queries (internal/topo):
	// reads and subscriptions go through the shared engine view and
	// att/sys stay nil. topoClosed is their lock-free retirement flag,
	// playing the role nil-sys plays for overlay queries.
	topoView   *topo.View
	topoClosed atomic.Bool

	mu      sync.Mutex
	att     *core.Attachment
	closed  bool
	subs    map[*exec.Subscription]struct{}
	retired int64 // dropped-update counts inherited from canceled subscriptions
}

// ID returns the session-unique query identifier (stable for the lifetime
// of the handle; used by the HTTP API's /queries/{id} routes).
func (q *Query) ID() int { return q.id }

// Spec returns the QuerySpec the query was registered with.
func (q *Query) Spec() QuerySpec { return q.spec }

// system returns the compiled system or ErrQueryClosed.
func (q *Query) system() (*core.System, error) {
	sys := q.sys.Load()
	if sys == nil {
		return nil, ErrQueryClosed
	}
	return sys, nil
}

// Read returns the current value of the standing query at v.
func (q *Query) Read(v NodeID) (Result, error) {
	if vw := q.topoView; vw != nil {
		if q.topoClosed.Load() {
			return Result{}, ErrQueryClosed
		}
		return vw.Read(v)
	}
	sys, err := q.system()
	if err != nil {
		return Result{}, err
	}
	return sys.ReadView(q.tag, v)
}

// ReadWire evaluates the standing query at v but stops before Finalize,
// returning the partial aggregate as a wire snapshot. A coordinator merges
// one snapshot per shard with agg.MergeWires to answer a cross-shard read;
// single-process callers should use Read.
func (q *Query) ReadWire(v NodeID) (WirePAO, error) {
	if q.topoView != nil {
		// Topology values don't decompose into per-shard partials: with
		// structure replicated to every shard (the sharding invariant),
		// any single shard's Read already IS the exact answer.
		return WirePAO{}, fmt.Errorf("eagr: %w: topology-valued queries have no wire PAO; read the exact value from any shard", ErrIncompatibleQuery)
	}
	sys, err := q.system()
	if err != nil {
		return WirePAO{}, err
	}
	return sys.ReadViewWire(q.tag, v)
}

// Covered reports whether the standing query's result at v is
// push-maintained (pre-computed on every covering write) — exactly the
// nodes a Subscribe observes. Continuous queries compile all-push, so every
// node of theirs is covered; on a quasi-continuous query coverage reflects
// the optimizer's push/pull decisions and may change across Rebalance.
// Unknown nodes and closed queries report false.
func (q *Query) Covered(v NodeID) bool {
	if vw := q.topoView; vw != nil {
		return !q.topoClosed.Load() && vw.Covered(v)
	}
	sys := q.sys.Load()
	if sys == nil {
		return false
	}
	return sys.ViewCovered(q.tag, v)
}

// ReadInto evaluates the standing query at v into a caller-provided result.
// List-valued answers (TOP-K) reuse res.List's backing array when capacity
// allows, so a hot read loop that retains res allocates nothing; *res is
// overwritten on every call.
func (q *Query) ReadInto(v NodeID, res *Result) error {
	if vw := q.topoView; vw != nil {
		if q.topoClosed.Load() {
			return ErrQueryClosed
		}
		r, err := vw.Read(v)
		if err != nil {
			return err
		}
		*res = r
		return nil
	}
	sys, err := q.system()
	if err != nil {
		return err
	}
	return sys.ReadViewInto(q.tag, v, res)
}

// Subscribe registers a continuous listener on the query with a bounded
// buffer (buffer < 1 defaults to 16). With no nodes it covers every node
// of the query; otherwise only the standing queries at the given nodes.
//
// Updates {Node, Result, TS} are delivered from the engine's push path
// whenever a write (or window expiry) reaches a subscribed reader's ego
// network. Delivery never blocks ingestion: when the consumer falls behind
// the buffer, the oldest pending update is dropped and counted (see
// Stats.DroppedUpdates). The returned cancel is idempotent and closes the
// channel; Close cancels all of a query's subscriptions.
//
// Note that only push-maintained results notify. Continuous queries
// (QuerySpec.Continuous) compile all-push, so their coverage is complete;
// on a quasi-continuous query a subscription observes exactly the readers
// the optimizer chose to pre-compute.
func (q *Query) Subscribe(buffer int, nodes ...NodeID) (<-chan Update, func(), error) {
	var sub *exec.Subscription
	if vw := q.topoView; vw != nil {
		// Topology-valued queries deliver structural updates through the
		// same bounded drop-oldest channel: incremental aggregates on every
		// edge-churn event that moves an observed ego's value, recompute
		// aggregates at each scheduled watermark tick.
		if q.topoClosed.Load() {
			return nil, nil, ErrQueryClosed
		}
		s, err := vw.Subscribe(buffer, nodes...)
		if err != nil {
			return nil, nil, err
		}
		sub = s
	} else {
		sys, err := q.system()
		if err != nil {
			return nil, nil, err
		}
		s, err := sys.SubscribeView(q.tag, buffer, nodes...)
		if err != nil {
			return nil, nil, err
		}
		sub = s
	}
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		q.unsubscribe(sub)
		return nil, nil, ErrQueryClosed
	}
	q.subs[sub] = struct{}{}
	q.mu.Unlock()
	cancel := func() { q.cancelSub(sub) }
	return sub.Updates(), cancel, nil
}

// cancelSub tears one subscription down, folding its drop count into the
// query's retired total.
func (q *Query) cancelSub(sub *exec.Subscription) {
	q.mu.Lock()
	if _, live := q.subs[sub]; !live {
		q.mu.Unlock()
		return
	}
	delete(q.subs, sub)
	q.mu.Unlock()
	dropped := q.unsubscribe(sub)
	q.mu.Lock()
	q.retired += dropped
	q.mu.Unlock()
}

// unsubscribe detaches sub via the query's system — sysRef survives Close,
// and System.Unsubscribe targets the current engine even across
// recompiles — and returns the final drop count. Topology-valued queries
// detach through their engine view instead (topoView also survives Close).
func (q *Query) unsubscribe(sub *exec.Subscription) int64 {
	if vw := q.topoView; vw != nil {
		vw.Unsubscribe(sub)
	} else {
		q.sysRef.Unsubscribe(sub)
	}
	return sub.Dropped()
}

// dropped returns the query's total dropped-update count (live + retired
// subscriptions).
func (q *Query) dropped() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	total := q.retired
	for sub := range q.subs {
		total += sub.Dropped()
	}
	return total
}

// Close retires the query: its subscriptions are canceled, its handle
// stops serving reads (ErrQueryClosed), and its reference on the shared
// compiled overlay is released — the overlay itself is torn down only when
// the last query sharing it closes. On a durable session the retirement is
// logged, so the query stays gone after recovery. Closing an
// already-closed query returns ErrQueryClosed.
func (q *Query) Close() error {
	d := q.sess.dur
	if d == nil || d.replaying || !q.durable {
		return q.closeInner()
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	q.mu.Lock()
	alreadyClosed := q.closed
	q.mu.Unlock()
	var werr error
	if !alreadyClosed && !d.closed {
		if _, err := d.log.AppendRetire(uint64(q.id)); err != nil {
			// The WAL is poisoned; still retire the in-memory query. The
			// next recovery resurrects it — annoying, never incorrect.
			werr = fmt.Errorf("eagr: durable retire: %w", err)
		}
	}
	if err := q.closeInner(); err != nil {
		return err
	}
	return werr
}

// closeInner retires the query without touching the durability layer.
func (q *Query) closeInner() error {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return ErrQueryClosed
	}
	q.closed = true
	subs := q.subs
	q.subs = map[*exec.Subscription]struct{}{}
	q.mu.Unlock()

	var dropped int64
	for sub := range subs {
		dropped += q.unsubscribe(sub)
	}
	q.mu.Lock()
	q.retired += dropped
	q.mu.Unlock()
	q.sys.Store(nil)
	s := q.sess
	s.mu.Lock()
	delete(s.queries, q.id)
	s.mu.Unlock()
	if vw := q.topoView; vw != nil {
		q.topoClosed.Store(true)
		vw.Release()
		return nil
	}
	return s.multi.Detach(q.att)
}

// Stats summarizes a query's compiled overlay and runtime counters.
type Stats struct {
	Writers, Readers, Partials int
	Edges, NegativeEdges       int
	SharingIndex               float64
	AvgDepth                   float64
	Algorithm                  string
	Mode                       string
	Maintainable               bool
	// Shared is the number of identically-configured queries (including
	// this one) sharing this query's compiled member for free.
	Shared int
	// Family is the number of distinct member queries (including this one)
	// merged into the compiled overlay these stats describe: Family > 1
	// means this query reads a per-query view of a MERGED overlay whose
	// partial aggregators are shared across members with different
	// neighborhoods or reader sets.
	Family int
	// OwnReaders is the number of reader nodes this query's view owns in
	// the (possibly shared) overlay; Readers counts all members' readers.
	OwnReaders int
	// Subscribers is the number of live subscriptions on the overlay's
	// engine; DroppedUpdates counts this query's discarded deliveries.
	Subscribers    int
	DroppedUpdates int64
}

// Stats returns current overlay and configuration statistics; the zero
// Stats after Close.
func (q *Query) Stats() Stats {
	if vw := q.topoView; vw != nil {
		if q.topoClosed.Load() {
			return Stats{}
		}
		alg := "windowed-recompute"
		if vw.Incremental() {
			alg = "incremental"
		}
		return Stats{
			Algorithm:      alg,
			Mode:           "topo",
			Maintainable:   true,
			Shared:         vw.Refs(),
			Family:         1,
			Subscribers:    vw.Subscribers(),
			DroppedUpdates: q.dropped(),
		}
	}
	sys := q.sys.Load()
	if sys == nil {
		return Stats{}
	}
	st := sys.Stats()
	return Stats{
		Writers:        st.Overlay.Writers,
		Readers:        st.Overlay.Readers,
		Partials:       st.Overlay.Partials,
		Edges:          st.Overlay.Edges,
		NegativeEdges:  st.Overlay.NegEdges,
		SharingIndex:   st.Overlay.SharingIndex,
		AvgDepth:       st.Overlay.AvgDepth,
		Algorithm:      st.Algorithm,
		Mode:           string(st.Mode),
		Maintainable:   st.Maintainable,
		Shared:         q.att.Shared(),
		Family:         q.att.FamilySize(),
		OwnReaders:     st.Overlay.QueryReaders[q.tag],
		Subscribers:    sys.Subscribers(),
		DroppedUpdates: q.dropped(),
	}
}

// Sharing returns the query's sharing counters without walking the overlay
// for full statistics: how many identical registrations share its compiled
// member (shared), how many member queries its merge family hosts — itself
// included — on the shared overlay (family), and how many reader nodes its
// own view owns there (ownReaders). Zeros after Close.
func (q *Query) Sharing() (shared, family, ownReaders int) {
	if vw := q.topoView; vw != nil {
		if q.topoClosed.Load() {
			return 0, 0, 0
		}
		return vw.Refs(), 1, 0
	}
	sys := q.sys.Load()
	if sys == nil {
		return 0, 0, 0
	}
	return q.att.Shared(), q.att.FamilySize(), sys.ViewReaders(q.tag)
}

// Internal exposes the query's underlying core system for advanced use
// (runners, benchmarks, custom cost models), or nil after Close.
func (q *Query) Internal() *core.System { return q.sys.Load() }
