package eagr

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/wal"
)

// Durability: a Session opened with OpenDurable persists the event stream
// as a write-ahead log and periodically checkpoints the full session image
// (graph, registered queries, per-writer window suffixes). A restart over
// the same directory recovers by loading the latest valid checkpoint and
// replaying the WAL tail through the normal apply path, truncating any
// torn tail a crash left behind. See DESIGN.md's durability section.

// ErrDurabilityClosed reports a mutation on a session whose durability
// layer has been shut down (CloseDurability or SimulateCrash).
var ErrDurabilityClosed = errors.New("eagr: durability closed")

// FsyncPolicy selects when acknowledged events are forced to stable
// storage.
type FsyncPolicy int

const (
	// FsyncPerBatch (the default) fsyncs the WAL on every appended batch:
	// an acknowledged event is never lost.
	FsyncPerBatch FsyncPolicy = iota
	// FsyncInterval fsyncs when DurabilityOptions.FsyncInterval has elapsed
	// since the last sync: a crash loses at most the events acknowledged
	// inside the window.
	FsyncInterval
	// FsyncOff never fsyncs on append; the OS flushes on its own schedule.
	// Graceful shutdown still flushes everything.
	FsyncOff
)

// String returns the flag spelling of the policy.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncPerBatch:
		return "per-batch"
	case FsyncInterval:
		return "interval"
	case FsyncOff:
		return "off"
	default:
		return fmt.Sprintf("FsyncPolicy(%d)", int(p))
	}
}

// ParseFsyncPolicy parses the flag spellings: "per-batch" (or "batch",
// "always"), "interval", "off" (or "none").
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "per-batch", "batch", "always", "":
		return FsyncPerBatch, nil
	case "interval":
		return FsyncInterval, nil
	case "off", "none":
		return FsyncOff, nil
	default:
		return 0, fmt.Errorf("eagr: unknown fsync policy %q", s)
	}
}

// DurabilityOptions configure OpenDurable; only Dir is required.
type DurabilityOptions struct {
	// Dir is the directory holding WAL segments, checkpoints and markers.
	// It is created if absent and must be owned exclusively by one session.
	Dir string
	// Fsync selects the WAL sync policy (default FsyncPerBatch).
	Fsync FsyncPolicy
	// FsyncInterval is the FsyncInterval flush period (default 100ms).
	FsyncInterval time.Duration
	// CheckpointInterval is the period of background checkpoints; zero
	// disables them (Checkpoint can still be called explicitly, and
	// CloseDurability always writes a final one).
	CheckpointInterval time.Duration
	// SegmentBytes is the WAL segment roll size (default 4 MiB).
	SegmentBytes int64

	// fs overrides the backing filesystem (fault-injection tests).
	fs wal.FS
}

// Recovery summarizes what OpenDurable found and rebuilt.
type Recovery struct {
	// CleanShutdown is true when a valid clean-shutdown marker matched the
	// log: the checkpoint alone was loaded and no replay ran.
	CleanShutdown bool
	// CheckpointSeq/CheckpointLSN identify the checkpoint loaded (zero when
	// the directory was fresh, before the initial checkpoint).
	CheckpointSeq uint64
	CheckpointLSN uint64
	// RecoveredQueries is the number of standing queries live after
	// recovery (checkpoint queries plus replayed registrations minus
	// replayed retirements).
	RecoveredQueries int
	// ReplayedBatches/ReplayedEvents count the WAL tail replayed.
	ReplayedBatches int
	ReplayedEvents  int
	// TruncatedTail is true when the scan dropped a torn tail.
	TruncatedTail bool
	// NextOrdinal is the global event-stream ordinal after recovery: every
	// event with ordinal < NextOrdinal is part of the recovered state.
	NextOrdinal uint64
	// Watermark is the last expiry applied (replayed); WatermarkValid is
	// false when no expiry ever ran.
	Watermark      int64
	WatermarkValid bool
	// Duration is the wall time recovery took.
	Duration time.Duration
}

// durableState is the per-session durability layer. Its RWMutex is the
// consistency cut: every logged mutation holds the read lock across
// append-then-apply, and checkpoints (plus query register/retire, which
// must order exactly against batches in the log) hold the write lock — so
// a checkpoint never observes a half-applied batch.
type durableState struct {
	fs   wal.FS
	opts DurabilityOptions

	mu     sync.RWMutex
	log    *wal.Log
	closed bool
	// replaying disables the logging hooks while OpenDurable rebuilds
	// state by replay. Only the recovering goroutine runs then; the flag
	// is reset before the session escapes, so no synchronization needed.
	replaying bool
	ckptSeq   uint64

	maxTS      atomic.Int64 // max logged event timestamp (MinInt64 = none)
	lastExpire atomic.Int64 // max logged expiry (MinInt64 = none)

	ckpts       atomic.Int64
	lastCkptLSN atomic.Uint64
	lastCkptWM  atomic.Int64
	errMu       sync.Mutex
	lastCkptErr error

	recovery Recovery

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// casMax advances a to at least v.
func casMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// noteTS folds a logged batch's timestamps into the durable max-timestamp
// (zero timestamps are the "unstamped" sentinel and don't count).
func (d *durableState) noteTS(events []Event) {
	max := int64(math.MinInt64)
	for _, ev := range events {
		if ev.TS != 0 && ev.TS > max {
			max = ev.TS
		}
	}
	if max != math.MinInt64 {
		casMax(&d.maxTS, max)
	}
}

// logged appends events to the WAL and, only if the append succeeded (so
// acknowledged implies durable under FsyncPerBatch), applies them. The
// read lock spans both, keeping checkpoints consistent.
func (d *durableState) logged(events []Event, apply func() error) error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return ErrDurabilityClosed
	}
	if _, _, err := d.log.AppendBatch(events); err != nil {
		return fmt.Errorf("eagr: wal append: %w", err)
	}
	d.noteTS(events)
	return apply()
}

// contentOnly filters a WriteBatch batch down to the events WriteBatch
// actually applies, so the logged record replays with identical effect
// through ApplyBatch. The all-writes common case returns events unchanged.
func contentOnly(events []Event) []Event {
	for i, ev := range events {
		if ev.Kind != graph.ContentWrite {
			out := make([]Event, 0, len(events)-1)
			out = append(out, events[:i]...)
			for _, ev := range events[i+1:] {
				if ev.Kind == graph.ContentWrite {
					out = append(out, ev)
				}
			}
			return out
		}
	}
	return events
}

// queryRecord is the serialized form of a durable query registration: the
// plain-value spec plus the serializable compile options. Queries whose
// options cannot be serialized (custom Neighborhood functions, explicit
// per-node frequencies) register normally but are not durable — they
// silently don't survive recovery; Query.Durable reports which.
type queryRecord struct {
	ID          int       `json:"id"`
	Spec        QuerySpec `json:"spec"`
	Algorithm   string    `json:"algorithm,omitempty"`
	Mode        string    `json:"mode,omitempty"`
	Iterations  int       `json:"iterations,omitempty"`
	SplitNodes  bool      `json:"split_nodes,omitempty"`
	MaxReadCost float64   `json:"max_read_cost,omitempty"`
}

// encodeQueryRecord serializes a registration; ok is false when the
// options carry non-serializable state.
func encodeQueryRecord(id int, spec QuerySpec, o Options) ([]byte, bool) {
	if o.Neighborhood != nil || o.ReadFreq != nil || o.WriteFreq != nil {
		return nil, false
	}
	blob, err := json.Marshal(queryRecord{
		ID: id, Spec: spec,
		Algorithm: o.Algorithm, Mode: o.Mode, Iterations: o.Iterations,
		SplitNodes: o.SplitNodes, MaxReadCost: o.MaxReadCost,
	})
	if err != nil {
		return nil, false
	}
	return blob, true
}

func decodeQueryRecord(blob []byte) (int, QuerySpec, Options, error) {
	var qr queryRecord
	if err := json.Unmarshal(blob, &qr); err != nil {
		return 0, QuerySpec{}, Options{}, fmt.Errorf("eagr: decode query record: %w", err)
	}
	return qr.ID, qr.Spec, Options{
		Algorithm: qr.Algorithm, Mode: qr.Mode, Iterations: qr.Iterations,
		SplitNodes: qr.SplitNodes, MaxReadCost: qr.MaxReadCost,
	}, nil
}

// OpenDurable opens a durable multi-query session rooted at dopts.Dir.
//
// On a fresh directory it behaves like Open over g (nil g means an empty
// graph) and writes an initial checkpoint. On a directory with prior state
// it RECOVERS: g is ignored, the latest valid checkpoint is loaded (the
// previous one if the newest is damaged), the WAL tail is replayed through
// the normal apply path — re-registering queries, re-applying event
// batches and expiries in original order — and any torn tail a crash left
// is truncated, never fatal. The returned Recovery says which path ran and
// how much was replayed.
//
// The session must be shut down with CloseDurability to get the clean
// restart fast path; an unclean stop (crash, SIGKILL, SimulateCrash) costs
// a replay of the WAL tail on the next OpenDurable, nothing more.
func OpenDurable(g *Graph, dopts DurabilityOptions, opts ...Options) (*Session, *Recovery, error) {
	start := time.Now()
	fs := dopts.fs
	if fs == nil {
		if dopts.Dir == "" {
			return nil, nil, errors.New("eagr: DurabilityOptions.Dir is required")
		}
		osfs, err := wal.NewOsFS(dopts.Dir)
		if err != nil {
			return nil, nil, err
		}
		fs = osfs
	}
	var policy wal.SyncPolicy
	switch dopts.Fsync {
	case FsyncPerBatch:
		policy = wal.SyncAlways
	case FsyncInterval:
		policy = wal.SyncEvery
	case FsyncOff:
		policy = wal.SyncNone
	default:
		return nil, nil, fmt.Errorf("eagr: invalid fsync policy %d", int(dopts.Fsync))
	}

	// The marker is consumed immediately: any crash before the NEXT clean
	// shutdown must take the replay path.
	cleanLSN, hasClean := wal.ReadClean(fs)
	wal.RemoveClean(fs)

	log, err := wal.Open(fs, wal.Options{
		SegmentBytes: dopts.SegmentBytes,
		Policy:       policy,
		Interval:     dopts.FsyncInterval,
	})
	if err != nil {
		return nil, nil, err
	}
	ckpt, ckptSeq, err := wal.LoadLatestCheckpoint(fs)
	if err != nil {
		log.Close()
		return nil, nil, err
	}

	d := &durableState{fs: fs, opts: dopts, log: log}
	d.maxTS.Store(math.MinInt64)
	d.lastExpire.Store(math.MinInt64)
	rec := Recovery{TruncatedTail: log.Truncated()}

	var s *Session
	if ckpt == nil {
		// A checkpoint is written before the first append ever happens, so
		// records without any loadable checkpoint mean both retained
		// checkpoints were destroyed: refuse to present partial state as
		// the whole.
		if log.LastLSN() != 0 {
			log.Close()
			return nil, nil, errors.New("eagr: WAL contains records but no valid checkpoint; refusing partial recovery")
		}
		if g == nil {
			g = NewGraph(0)
		}
		s, err = Open(g, opts...)
		if err != nil {
			log.Close()
			return nil, nil, err
		}
		s.dur = d
		d.mu.Lock()
		err = s.checkpointLocked(d)
		d.mu.Unlock()
		if err != nil {
			log.Close()
			return nil, nil, fmt.Errorf("eagr: initial checkpoint: %w", err)
		}
	} else {
		g2, err := graph.Load(bytes.NewReader(ckpt.Graph))
		if err != nil {
			log.Close()
			return nil, nil, fmt.Errorf("eagr: checkpoint graph: %w", err)
		}
		s, err = Open(g2, opts...)
		if err != nil {
			log.Close()
			return nil, nil, err
		}
		s.dur = d
		d.replaying = true
		d.ckptSeq = ckptSeq
		d.lastCkptLSN.Store(ckpt.LSN)
		d.lastCkptWM.Store(ckpt.Watermark)
		rec.CheckpointSeq = ckptSeq
		rec.CheckpointLSN = ckpt.LSN
		log.SetNextOrd(ckpt.NextOrd)
		if ckpt.MaxTS != math.MinInt64 {
			d.maxTS.Store(ckpt.MaxTS)
		}
		if ckpt.Watermark != math.MinInt64 {
			d.lastExpire.Store(ckpt.Watermark)
		}
		// Re-register the checkpointed queries in registration order, then
		// inject every writer's window suffix through the normal write path
		// — windows, partial aggregates and scalars rebuild exactly.
		for _, blob := range ckpt.Queries {
			id, spec, o, derr := decodeQueryRecord(blob)
			if derr != nil {
				log.Close()
				return nil, nil, derr
			}
			q, rerr := s.register(spec, o, id)
			if rerr != nil {
				log.Close()
				return nil, nil, fmt.Errorf("eagr: recover query %d: %w", id, rerr)
			}
			q.durable = true
			rec.RecoveredQueries++
		}
		s.mu.Lock()
		if n := int(ckpt.NextQueryID); n > s.nextID {
			s.nextID = n
		}
		s.mu.Unlock()
		for _, gw := range ckpt.Windows {
			var evs []Event
			for _, ww := range gw.Windows {
				for _, e := range ww.Entries {
					evs = append(evs, Event{Kind: graph.ContentWrite, Node: ww.Node, Value: e.V, TS: e.TS})
				}
			}
			if len(evs) == 0 {
				continue
			}
			if ierr := s.multi.InjectGroupWindows(gw.Key, evs); ierr != nil {
				log.Close()
				return nil, nil, fmt.Errorf("eagr: recover windows: %w", ierr)
			}
		}
		if hasClean && cleanLSN == ckpt.LSN && log.LastLSN() == ckpt.LSN {
			rec.CleanShutdown = true
		} else {
			serr := log.Scan(ckpt.LSN+1, func(r wal.Record) error {
				switch r.Type {
				case wal.RecBatch:
					// Per-event apply errors (duplicate edge, dead node)
					// replayed the original's skips; the end state matches.
					_ = s.multi.ApplyBatch(r.Events)
					rec.ReplayedBatches++
					rec.ReplayedEvents += len(r.Events)
					d.noteTS(r.Events)
				case wal.RecRegister:
					id, spec, o, derr := decodeQueryRecord(r.Blob)
					if derr != nil {
						return derr
					}
					q, rerr := s.register(spec, o, id)
					if rerr != nil {
						return fmt.Errorf("eagr: recover query %d: %w", id, rerr)
					}
					q.durable = true
					rec.RecoveredQueries++
				case wal.RecRetire:
					if q := s.Query(int(r.QueryID)); q != nil {
						_ = q.closeInner()
						rec.RecoveredQueries--
					}
				case wal.RecExpire:
					s.multi.ExpireAll(r.TS)
					casMax(&d.lastExpire, r.TS)
				}
				return nil
			})
			if serr != nil {
				log.Close()
				return nil, nil, serr
			}
		}
		d.replaying = false
	}

	rec.CheckpointSeq = d.ckptSeq
	rec.CheckpointLSN = d.lastCkptLSN.Load()
	rec.NextOrdinal = log.NextOrd()
	if wm := d.lastExpire.Load(); wm != math.MinInt64 {
		rec.Watermark = wm
		rec.WatermarkValid = true
	}
	rec.Duration = time.Since(start)
	d.recovery = rec

	if dopts.CheckpointInterval > 0 {
		d.stop = make(chan struct{})
		d.done = make(chan struct{})
		go d.checkpointLoop(s)
	}
	recOut := rec
	return s, &recOut, nil
}

// checkpointLoop writes periodic background checkpoints.
func (d *durableState) checkpointLoop(s *Session) {
	defer close(d.done)
	t := time.NewTicker(d.opts.CheckpointInterval)
	defer t.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-t.C:
			if err := s.Checkpoint(); err != nil && !errors.Is(err, ErrDurabilityClosed) {
				d.errMu.Lock()
				d.lastCkptErr = err
				d.errMu.Unlock()
			}
		}
	}
}

// stopLoop terminates the background checkpointer, if any.
func (d *durableState) stopLoop() {
	d.stopOnce.Do(func() {
		if d.stop != nil {
			close(d.stop)
			<-d.done
		}
	})
}

// Durable reports whether the session was opened with OpenDurable (and its
// durability layer has not been closed).
func (s *Session) Durable() bool {
	d := s.dur
	if d == nil {
		return false
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	return !d.closed
}

// Checkpoint synchronously writes a checkpoint of the current session
// state and prunes the WAL segments it covers. It runs under the full
// durability lock, briefly excluding concurrent mutations.
func (s *Session) Checkpoint() error {
	d := s.dur
	if d == nil {
		return errors.New("eagr: durability not enabled")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrDurabilityClosed
	}
	return s.checkpointLocked(d)
}

// checkpointLocked builds and writes a checkpoint. Callers hold d.mu; no
// batch is mid-apply, so the graph, query set, window state and log
// position form one consistent cut.
func (s *Session) checkpointLocked(d *durableState) error {
	var gbuf bytes.Buffer
	if err := s.g.Save(&gbuf); err != nil {
		d.setCkptErr(err)
		return err
	}
	c := &wal.Checkpoint{
		LSN:       d.log.LastLSN(),
		NextOrd:   d.log.NextOrd(),
		Watermark: d.lastExpire.Load(),
		MaxTS:     d.maxTS.Load(),
		Graph:     gbuf.Bytes(),
	}
	s.mu.Lock()
	c.NextQueryID = uint64(s.nextID)
	qs := make([]*Query, 0, len(s.queries))
	for _, q := range s.queries {
		if q.durable {
			qs = append(qs, q)
		}
	}
	s.mu.Unlock()
	sort.Slice(qs, func(i, j int) bool { return qs[i].id < qs[j].id })
	durableKeys := make(map[string]bool, len(qs))
	for _, q := range qs {
		blob, ok := encodeQueryRecord(q.id, q.spec, q.opts)
		if !ok {
			continue
		}
		c.Queries = append(c.Queries, blob)
		durableKeys[q.fullKey] = true
	}
	for _, gw := range s.multi.ExportGroupWindows(func(k string) bool { return durableKeys[k] }) {
		nodes := make([]NodeID, 0, len(gw.Windows))
		for node := range gw.Windows {
			nodes = append(nodes, node)
		}
		sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
		cg := wal.GroupWindows{Key: gw.Key}
		for _, node := range nodes {
			cg.Windows = append(cg.Windows, wal.WriterWindow{Node: node, Entries: gw.Windows[node]})
		}
		c.Windows = append(c.Windows, cg)
	}
	seq := d.ckptSeq + 1
	if err := wal.WriteCheckpoint(d.fs, seq, c); err != nil {
		d.setCkptErr(err)
		return err
	}
	d.ckptSeq = seq
	d.ckpts.Add(1)
	d.lastCkptLSN.Store(c.LSN)
	d.lastCkptWM.Store(c.Watermark)
	d.setCkptErr(nil)
	d.log.Prune(c.LSN)
	return nil
}

func (d *durableState) setCkptErr(err error) {
	d.errMu.Lock()
	d.lastCkptErr = err
	d.errMu.Unlock()
}

// SyncWAL forces the WAL to stable storage regardless of the fsync policy.
// A no-op on non-durable (or already-closed) sessions.
func (s *Session) SyncWAL() error {
	d := s.dur
	if d == nil {
		return nil
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return nil
	}
	return d.log.Sync()
}

// CloseDurability shuts the durability layer down cleanly: a final
// checkpoint, the clean-shutdown marker (so the next OpenDurable skips
// replay), and the WAL files closed. The session itself stays usable but
// no longer persists anything; further logged mutations return
// ErrDurabilityClosed. A second call returns ErrDurabilityClosed.
func (s *Session) CloseDurability() error {
	d := s.dur
	if d == nil {
		return nil
	}
	d.stopLoop()
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrDurabilityClosed
	}
	cerr := s.checkpointLocked(d)
	var merr error
	if cerr == nil {
		merr = wal.WriteClean(d.fs, d.log.LastLSN())
	}
	lerr := d.log.Close()
	d.closed = true
	return errors.Join(cerr, merr, lerr)
}

// SimulateCrash abandons the durability layer WITHOUT a final checkpoint
// or clean marker — the on-disk state is exactly what a kill at this
// moment leaves (modulo OS page-cache loss, which only FaultFS models).
// The next OpenDurable takes the full recovery path. For tests, benchmarks
// and recovery drills.
func (s *Session) SimulateCrash() error {
	d := s.dur
	if d == nil {
		return nil
	}
	d.stopLoop()
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrDurabilityClosed
	}
	d.closed = true
	return d.log.Close()
}

// DurabilityStats is the observable state of the durability layer.
type DurabilityStats struct {
	Enabled bool
	Dir     string
	// WAL shape: live segments and their bytes, the last LSN, appended
	// record and fsync counts, and the recycled-segment pool size.
	WALSegments int
	WALBytes    int64
	WALLastLSN  uint64
	WALAppends  int64
	WALSyncs    int64
	WALFreePool int
	// Checkpoints written this run, the last one's LSN/watermark, and the
	// last checkpoint error (empty when the last attempt succeeded).
	Checkpoints             int64
	LastCheckpointLSN       uint64
	LastCheckpointWatermark int64
	LastCheckpointError     string
	// Recovery is the summary of this session's OpenDurable.
	Recovery Recovery
}

// DurabilityStats returns current durability counters; the zero value when
// the session is not durable.
func (s *Session) DurabilityStats() DurabilityStats {
	d := s.dur
	if d == nil {
		return DurabilityStats{}
	}
	ls := d.log.LogStats()
	st := DurabilityStats{
		Enabled:                 true,
		Dir:                     d.opts.Dir,
		WALSegments:             ls.Segments,
		WALBytes:                ls.Bytes,
		WALLastLSN:              ls.LastLSN,
		WALAppends:              ls.Appended,
		WALSyncs:                ls.Syncs,
		WALFreePool:             ls.FreePool,
		Checkpoints:             d.ckpts.Load(),
		LastCheckpointLSN:       d.lastCkptLSN.Load(),
		LastCheckpointWatermark: d.lastCkptWM.Load(),
		Recovery:                d.recovery,
	}
	d.errMu.Lock()
	if d.lastCkptErr != nil {
		st.LastCheckpointError = d.lastCkptErr.Error()
	}
	d.errMu.Unlock()
	return st
}

// Durable reports whether this query survives recovery: registered on a
// durable session with serializable options (no custom Neighborhood
// functions or explicit per-node frequencies).
func (q *Query) Durable() bool { return q.durable }
