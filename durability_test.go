package eagr

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/wal"
)

// durTestSpecs are the standing queries every durability test registers:
// a tuple-window sum, a time-window count, and a 2-hop member that joins
// the sum's merge family (same aggregate/window semantics, different hop
// depth → ONE merged overlay).
var durTestSpecs = []QuerySpec{
	{Aggregate: "sum", WindowTuples: 4},
	{Aggregate: "count", WindowTime: 40},
	{Aggregate: "sum", WindowTuples: 4, Hops: 2},
}

func registerAll(t *testing.T, s *Session, specs []QuerySpec) []*Query {
	t.Helper()
	qs := make([]*Query, len(specs))
	for i, spec := range specs {
		q, err := s.Register(spec)
		if err != nil {
			t.Fatalf("Register %d: %v", i, err)
		}
		qs[i] = q
	}
	return qs
}

// assertSameResults compares every query's answer at every node between
// the recovered session and a never-crashed oracle.
func assertSameResults(t *testing.T, label string, got, want *Session) {
	t.Helper()
	gq, wq := got.Queries(), want.Queries()
	if len(gq) != len(wq) {
		t.Fatalf("%s: %d recovered queries, oracle has %d", label, len(gq), len(wq))
	}
	for i := range gq {
		if gq[i].ID() != wq[i].ID() {
			t.Fatalf("%s: query id mismatch %d vs %d", label, gq[i].ID(), wq[i].ID())
		}
		maxID := want.Graph().MaxID()
		for v := NodeID(0); v < NodeID(maxID); v++ {
			gr, gerr := gq[i].Read(v)
			wr, werr := wq[i].Read(v)
			if (gerr != nil) != (werr != nil) {
				t.Fatalf("%s: query %d node %d: err %v vs oracle %v", label, gq[i].ID(), v, gerr, werr)
			}
			if gerr == nil && !gr.Eq(wr) {
				t.Fatalf("%s: query %d node %d: %+v, oracle %+v", label, gq[i].ID(), v, gr, wr)
			}
		}
	}
}

func buildDurTestGraph(n int, rng *rand.Rand) ([]Event, *Graph, *Graph) {
	// Two structurally identical graphs (recovered session needs one at
	// first boot, the oracle its own).
	edges := make([]Event, 0, n*3)
	for i := 0; i < n*3; i++ {
		u, v := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
		if u != v {
			edges = append(edges, NewEdgeAdd(u, v, 0))
		}
	}
	return edges, NewGraph(n), NewGraph(n)
}

// TestCrashRecoveryProperty is the crash-recovery property test: a random
// mixed stream is fed into a durable session whose filesystem dies at a
// random write; the session is recovered from disk and every standing
// query's results must match a never-crashed oracle that applied exactly
// the acknowledged batches. fsync=per-batch, so acknowledged ⇒ durable.
func TestCrashRecoveryProperty(t *testing.T) {
	const nodes = 24
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			dir := t.TempDir()
			osfs, err := wal.NewOsFS(dir)
			if err != nil {
				t.Fatal(err)
			}
			// Crash somewhere in the first few hundred writes; ShortWrite on
			// even seeds leaves a torn record for recovery to truncate.
			ffs := wal.NewFaultFS(osfs, wal.FaultConfig{
				CrashAtWrite: int64(20 + rng.Intn(300)),
				ShortWrite:   seed%2 == 0,
			})
			edges, g, og := buildDurTestGraph(nodes, rng)

			s, rec, err := OpenDurable(g, DurabilityOptions{fs: ffs})
			if err != nil {
				t.Fatalf("OpenDurable: %v", err)
			}
			if rec.CleanShutdown || rec.ReplayedEvents != 0 {
				t.Fatalf("fresh dir recovery = %+v", rec)
			}
			registerAll(t, s, durTestSpecs)

			// Random mixed stream: content writes with increasing timestamps,
			// occasional structural churn, occasional mid-stream checkpoints.
			// The seed edge set is just the first batch.
			// Duplicate-edge errors are per-event skips: the batch is still
			// logged and the oracle reproduces the same skips.
			var acked [][]Event
			if err := s.ApplyBatch(edges); errors.Is(err, wal.ErrInjected) {
				t.Fatalf("fault fired on the seed batch: %v", err)
			}
			acked = append(acked, edges)
			ts := int64(0)
			crashed := false
			for b := 0; b < 400 && !crashed; b++ {
				k := 1 + rng.Intn(6)
				batch := make([]Event, 0, k)
				for i := 0; i < k; i++ {
					switch rng.Intn(10) {
					case 0:
						u, v := NodeID(rng.Intn(nodes)), NodeID(rng.Intn(nodes))
						if u == v {
							v = (v + 1) % nodes
						}
						batch = append(batch, NewEdgeAdd(u, v, 0))
					case 1:
						u, v := NodeID(rng.Intn(nodes)), NodeID(rng.Intn(nodes))
						if u == v {
							v = (v + 1) % nodes
						}
						batch = append(batch, NewEdgeRemove(u, v, 0))
					default:
						ts++
						batch = append(batch, NewWrite(NodeID(rng.Intn(nodes)), int64(rng.Intn(100)), ts))
					}
				}
				err := s.ApplyBatch(batch)
				switch {
				case errors.Is(err, wal.ErrInjected) || errors.Is(err, ErrDurabilityClosed):
					crashed = true
				default:
					// Applied (possibly with per-event structural skips the
					// oracle will reproduce): the batch is in the WAL.
					acked = append(acked, batch)
				}
				if !crashed && rng.Intn(25) == 0 {
					_ = s.Checkpoint() // may die on the fault; recovery falls back
				}
			}
			if !crashed {
				t.Fatal("fault never fired; raise the stream length")
			}
			_ = s.SimulateCrash()

			// Recover from the real directory with the real filesystem.
			s2, rec2, err := OpenDurable(nil, DurabilityOptions{Dir: dir})
			if err != nil {
				t.Fatalf("recovery: %v", err)
			}
			defer s2.CloseDurability()
			if rec2.CleanShutdown {
				t.Fatal("crash recovered as clean shutdown")
			}
			if rec2.RecoveredQueries != len(durTestSpecs) {
				t.Fatalf("recovered %d queries, want %d", rec2.RecoveredQueries, len(durTestSpecs))
			}
			var sent uint64
			for _, b := range acked {
				sent += uint64(len(b))
			}
			// fsync=per-batch: every acknowledged event must be recovered.
			if rec2.NextOrdinal < sent {
				t.Fatalf("acknowledged %d events but recovered only %d", sent, rec2.NextOrdinal)
			}

			// Oracle: a never-crashed session applying exactly the acked
			// batches (stream order == WAL order: single-threaded sender).
			assertSameResults(t, fmt.Sprintf("seed %d", seed), s2, buildOracle(t, og, acked))
		})
	}
}

// buildOracle replays the acknowledged stream into a fresh non-durable
// session with the standard query set.
func buildOracle(t *testing.T, g *Graph, acked [][]Event) *Session {
	t.Helper()
	oracle, err := Open(g)
	if err != nil {
		t.Fatal(err)
	}
	registerAll(t, oracle, durTestSpecs)
	for _, b := range acked {
		_ = oracle.ApplyBatch(b) // structural skips mirror the durable run
	}
	return oracle
}

// TestDurableCleanShutdownFastPath pins the graceful-restart fast path: a
// CloseDurability'd directory reopens from the checkpoint + clean marker
// with zero replay.
func TestDurableCleanShutdownFastPath(t *testing.T) {
	dir := t.TempDir()
	s, _, err := OpenDurable(NewGraph(8), DurabilityOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	registerAll(t, s, durTestSpecs)
	for u := 0; u < 7; u++ {
		if err := s.AddEdge(NodeID(u), NodeID(u+1)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		if err := s.Write(NodeID(i%8), int64(i), int64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	s.ExpireAll(30)
	if err := s.CloseDurability(); err != nil {
		t.Fatalf("CloseDurability: %v", err)
	}
	if !errors.Is(s.CloseDurability(), ErrDurabilityClosed) {
		t.Fatal("second CloseDurability should report closed")
	}
	if err := s.Write(0, 1, 99); !errors.Is(err, ErrDurabilityClosed) {
		t.Fatalf("write after CloseDurability = %v, want ErrDurabilityClosed", err)
	}

	s2, rec, err := OpenDurable(nil, DurabilityOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.CloseDurability()
	if !rec.CleanShutdown {
		t.Fatalf("want clean-shutdown fast path, got %+v", rec)
	}
	if rec.ReplayedBatches != 0 || rec.ReplayedEvents != 0 {
		t.Fatalf("clean restart replayed %d batches / %d events", rec.ReplayedBatches, rec.ReplayedEvents)
	}
	if rec.RecoveredQueries != len(durTestSpecs) {
		t.Fatalf("recovered %d queries, want %d", rec.RecoveredQueries, len(durTestSpecs))
	}
	if !rec.WatermarkValid || rec.Watermark != 30 {
		t.Fatalf("watermark = %d/%v, want 30/true", rec.Watermark, rec.WatermarkValid)
	}

	// State must still match the oracle even with zero replay (it came
	// entirely from the checkpoint image).
	og := NewGraph(8)
	oracle, _ := Open(og)
	registerAll(t, oracle, durTestSpecs)
	for u := 0; u < 7; u++ {
		_ = oracle.AddEdge(NodeID(u), NodeID(u+1))
	}
	for i := 0; i < 50; i++ {
		_ = oracle.Write(NodeID(i%8), int64(i), int64(i+1))
	}
	oracle.ExpireAll(30)
	assertSameResults(t, "clean restart", s2, oracle)
}

// TestDurableExpireReplay pins that watermark-driven expiry is logged and
// replayed exactly: windows emptied before the crash stay empty after
// recovery even though the replayed content writes are old.
func TestDurableExpireReplay(t *testing.T) {
	dir := t.TempDir()
	s, _, err := OpenDurable(NewGraph(4), DurabilityOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	q, err := s.Register(QuerySpec{Aggregate: "count", WindowTime: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(0, 5, 100); err != nil {
		t.Fatal(err)
	}
	// Expire far past the write: the window at node 1 empties. A recovery
	// that recomputed expiry (instead of replaying it) would need to know
	// this watermark; a recovery that ignored it would resurrect the write.
	s.ExpireAll(500)
	if r, _ := q.Read(1); r.Scalar != 0 {
		t.Fatalf("pre-crash count = %d, want 0", r.Scalar)
	}
	_ = s.SimulateCrash() // no checkpoint since the expiry: replay must redo it

	s2, rec, err := OpenDurable(nil, DurabilityOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.CloseDurability()
	if rec.CleanShutdown {
		t.Fatal("expected replay path")
	}
	q2 := s2.Query(q.ID())
	if q2 == nil {
		t.Fatal("query not recovered")
	}
	if r, _ := q2.Read(1); r.Scalar != 0 {
		t.Fatalf("recovered count = %d, want 0 (expiry must replay)", r.Scalar)
	}
}

// TestDurableQueryLifecycle pins durable register/retire: a query closed
// before the crash stays closed after recovery, and ids never collide.
func TestDurableQueryLifecycle(t *testing.T) {
	dir := t.TempDir()
	s, _, err := OpenDurable(NewGraph(4), DurabilityOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	q1, _ := s.Register(QuerySpec{Aggregate: "sum"})
	q2, _ := s.Register(QuerySpec{Aggregate: "count"})
	if err := q1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	_ = s.SimulateCrash()

	s2, rec, err := OpenDurable(nil, DurabilityOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.CloseDurability()
	if rec.RecoveredQueries != 1 {
		t.Fatalf("recovered %d queries, want 1", rec.RecoveredQueries)
	}
	if s2.Query(q1.ID()) != nil {
		t.Fatal("retired query resurrected")
	}
	if s2.Query(q2.ID()) == nil {
		t.Fatal("live query not recovered")
	}
	// New registrations must not reuse recovered ids.
	q3, err := s2.Register(QuerySpec{Aggregate: "max"})
	if err != nil {
		t.Fatal(err)
	}
	if q3.ID() <= q2.ID() {
		t.Fatalf("new id %d collides with recovered id space (max %d)", q3.ID(), q2.ID())
	}
}

// TestDurableNodeIDReuse pins that NodeAdd id recycling replays
// identically: the checkpointed graph carries its free list.
func TestDurableNodeIDReuse(t *testing.T) {
	dir := t.TempDir()
	s, _, err := OpenDurable(NewGraph(4), DurabilityOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	registerAll(t, s, durTestSpecs[:1])
	if err := s.RemoveNode(1); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil { // free list crosses via the checkpoint
		t.Fatal(err)
	}
	id, err := s.AddNode() // reuses id 1, logged as a NodeAdd event
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 {
		t.Fatalf("AddNode reused id %d, want 1", id)
	}
	if err := s.AddEdge(id, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(id, 7, 1); err != nil {
		t.Fatal(err)
	}
	_ = s.SimulateCrash()

	s2, _, err := OpenDurable(nil, DurabilityOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.CloseDurability()
	q := s2.Queries()[0]
	r, err := q.Read(0)
	if err != nil {
		t.Fatalf("read after recovery: %v", err)
	}
	if r.Scalar != 7 {
		t.Fatalf("sum at node 0 = %d, want 7 (write on the reused id)", r.Scalar)
	}
}

// TestDurableIngestorResume pins the Ingestor integration: ingest with a
// logical clock and watermark expiry, crash, recover, and the new
// Ingestor's time domain continues where the old one stopped.
func TestDurableIngestorResume(t *testing.T) {
	dir := t.TempDir()
	s, _, err := OpenDurable(NewGraph(6), DurabilityOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	registerAll(t, s, durTestSpecs)
	for u := 0; u < 5; u++ {
		if err := s.AddEdge(NodeID(u), NodeID(u+1)); err != nil {
			t.Fatal(err)
		}
	}
	ing, err := s.Ingest(IngestOptions{Clock: LogicalClock(), BatchSize: 8, MaxTimestampJump: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := ing.Send(NodeID(i%6), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ing.Flush(); err != nil {
		t.Fatal(err)
	}
	preTS := s.dur.maxTS.Load()
	if preTS < 100 {
		t.Fatalf("durable maxTS = %d, want >= 100", preTS)
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	_ = s.SimulateCrash()

	s2, rec, err := OpenDurable(nil, DurabilityOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.CloseDurability()
	if rec.NextOrdinal < 100 {
		t.Fatalf("recovered %d events, want >= 100 (all were flushed)", rec.NextOrdinal)
	}
	ing2, err := s2.Ingest(IngestOptions{Clock: LogicalClock(), MaxTimestampJump: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer ing2.Close()
	// The recovered time domain seeds the new Ingestor: its
	// MaxTimestampJump reference starts at the recovered max timestamp,
	// so a continuation stream is accepted and a far-future corrupt
	// timestamp still rejected.
	if err := ing2.SendEvent(NewWrite(0, 1, preTS+5)); err != nil {
		t.Fatalf("continuation event rejected: %v", err)
	}
	if err := ing2.SendEvent(NewWrite(0, 1, preTS+(1<<30))); !errors.Is(err, ErrTimestampJump) {
		t.Fatalf("far-future event = %v, want ErrTimestampJump", err)
	}
}

// TestNonSerializableQueryNotDurable pins the documented carve-out:
// queries with un-serializable options run but do not survive recovery.
func TestNonSerializableQueryNotDurable(t *testing.T) {
	dir := t.TempDir()
	s, _, err := OpenDurable(NewGraph(4), DurabilityOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	plain, _ := s.Register(QuerySpec{Aggregate: "sum"})
	custom, err := s.Register(QuerySpec{Aggregate: "sum"}, Options{
		Neighborhood: Filtered(KHop(1), func(g *Graph, c, n NodeID) bool { return n%2 == 0 }, "even"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Durable() || custom.Durable() {
		t.Fatalf("durable flags: plain=%v custom=%v, want true/false", plain.Durable(), custom.Durable())
	}
	if err := s.CloseDurability(); err != nil {
		t.Fatal(err)
	}
	s2, rec, err := OpenDurable(nil, DurabilityOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.CloseDurability()
	if rec.RecoveredQueries != 1 {
		t.Fatalf("recovered %d queries, want only the serializable one", rec.RecoveredQueries)
	}
}

// TestDurableBackgroundCheckpoint smoke-tests the checkpoint loop and the
// stats surface.
func TestDurableBackgroundCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s, _, err := OpenDurable(NewGraph(4), DurabilityOptions{
		Dir:                dir,
		CheckpointInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	registerAll(t, s, durTestSpecs[:1])
	deadline := time.Now().Add(5 * time.Second)
	for {
		for i := 0; i < 50; i++ {
			_ = s.Write(NodeID(i%4), 1, int64(i+1))
		}
		if st := s.DurabilityStats(); st.Checkpoints >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background checkpoints never ran: %+v", s.DurabilityStats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := s.DurabilityStats()
	if !st.Enabled || st.WALLastLSN == 0 || st.LastCheckpointError != "" {
		t.Fatalf("stats = %+v", st)
	}
	if err := s.CloseDurability(); err != nil {
		t.Fatal(err)
	}
}
