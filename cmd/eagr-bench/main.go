// Command eagr-bench regenerates the paper's evaluation tables and figures
// (§5). Each experiment prints the same series the corresponding figure
// plots; every table's notes line records the shape the paper's published
// results show, so runs are self-checking.
//
// Usage:
//
//	eagr-bench -experiment fig14a            # one experiment, full size
//	eagr-bench -experiment all -quick        # everything, laptop-quick
//	eagr-bench -list                         # show available experiments
//	eagr-bench -engine-bench                 # engine micros -> BENCH_engine.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
)

// parseCPUList parses the -cpu flag: a comma-separated list of positive
// GOMAXPROCS values for the parallel-ingest sweep.
func parseCPUList(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("invalid -cpu entry %q", f)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-cpu list is empty")
	}
	return out, nil
}

func main() {
	var (
		name   = flag.String("experiment", "", "experiment to run (figNN, headline, or 'all')")
		list   = flag.Bool("list", false, "list available experiments")
		scale  = flag.Int("scale", 1, "dataset scale multiplier")
		evts   = flag.Int("events", 0, "events per throughput measurement (0 = default)")
		iters  = flag.Int("iterations", 0, "overlay construction iterations (0 = default)")
		seed   = flag.Int64("seed", 1, "random seed")
		quick  = flag.Bool("quick", false, "shrink datasets for a fast pass")
		engB   = flag.Bool("engine-bench", false, "run the engine micro-benchmarks and write BENCH_engine.json")
		engOut = flag.String("engine-bench-out", "BENCH_engine.json", "output path for -engine-bench")
		cpus   = flag.String("cpu", "1,2,4", "comma-separated GOMAXPROCS values for the -engine-bench parallel-ingest sweep")
	)
	flag.Parse()

	if *engB {
		cpuList, err := parseCPUList(*cpus)
		if err != nil {
			fmt.Fprintf(os.Stderr, "engine-bench: %v\n", err)
			os.Exit(2)
		}
		if err := runEngineBench(*engOut, cpuList); err != nil {
			fmt.Fprintf(os.Stderr, "engine-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list || *name == "" {
		fmt.Println("available experiments:")
		for _, n := range experiments.Names() {
			e, _ := experiments.Get(n)
			fmt.Printf("  %-8s  %s\n", n, e.Desc)
		}
		if *name == "" {
			fmt.Println("\nrun with -experiment <name> or -experiment all")
		}
		return
	}

	cfg := experiments.Config{
		Scale:      *scale,
		Events:     *evts,
		Iterations: *iters,
		Seed:       *seed,
		Quick:      *quick,
	}

	names := []string{*name}
	if *name == "all" {
		names = experiments.Names()
	}
	for _, n := range names {
		e, ok := experiments.Get(n)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", n)
			os.Exit(2)
		}
		start := time.Now()
		tables := e.Run(cfg)
		for _, t := range tables {
			fmt.Println(t.Format())
		}
		fmt.Printf("(%s completed in %.1fs)\n\n", n, time.Since(start).Seconds())
	}
}
