package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"

	eagr "repro"
	"repro/internal/agg"
	"repro/internal/benchfix"
	"repro/internal/construct"
	"repro/internal/shard"
	"repro/internal/workload"
)

// benchIngestorThroughput is the -engine-bench twin of the repo's
// BenchmarkOpIngestorThroughput (the facade-level fixture cannot live in
// benchfix, which the eagr package's own benchmarks import).
func benchIngestorThroughput(b *testing.B) {
	g := workload.SocialGraph(2000, 8, 1)
	sess, err := eagr.Open(g, eagr.Options{Algorithm: "baseline", Mode: "all-push"})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sess.Register(eagr.QuerySpec{Aggregate: "sum"}); err != nil {
		b.Fatal(err)
	}
	wl := workload.ZipfWorkload(g.MaxID(), 1.0, 1e6, 1, 1)
	writes := benchfix.Writes(workload.Events(wl, 1<<16, 2))
	ing, err := sess.Ingest(eagr.IngestOptions{
		BatchSize:     1024,
		QueueDepth:    8,
		FlushInterval: -1,
		Clock:         eagr.LogicalClock(),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := writes[i%len(writes)]
		if err := ing.SendEvent(eagr.NewWrite(ev.Node, ev.Value, int64(i+1))); err != nil {
			b.Fatal(err)
		}
	}
	if err := ing.Close(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
}

// benchIngestorThroughputParallel is the -engine-bench twin of the repo's
// BenchmarkOpIngestorThroughputParallel: slabs of events through
// SendEvents into the pipelined apply worker pool, ApplyWorkers pinned to
// the current GOMAXPROCS (the -cpu sweep sets it per run). At one proc
// the Ingestor degenerates to the sequential worker.
func benchIngestorThroughputParallel(b *testing.B) {
	g := workload.SocialGraph(2000, 8, 1)
	sess, err := eagr.Open(g, eagr.Options{Algorithm: "baseline", Mode: "all-push"})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sess.Register(eagr.QuerySpec{Aggregate: "sum"}); err != nil {
		b.Fatal(err)
	}
	wl := workload.ZipfWorkload(g.MaxID(), 1.0, 1e6, 1, 1)
	writes := benchfix.Writes(workload.Events(wl, 1<<16, 2))
	ing, err := sess.Ingest(eagr.IngestOptions{
		BatchSize:     1024,
		QueueDepth:    8,
		FlushInterval: -1,
		Clock:         eagr.LogicalClock(),
		ApplyWorkers:  runtime.GOMAXPROCS(0),
	})
	if err != nil {
		b.Fatal(err)
	}
	const slab = 512
	buf := make([]eagr.Event, 0, slab)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := writes[i%len(writes)]
		buf = append(buf, eagr.NewWrite(ev.Node, ev.Value, int64(i+1)))
		if len(buf) == slab {
			if _, err := ing.SendEvents(buf); err != nil {
				b.Fatal(err)
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		if _, err := ing.SendEvents(buf); err != nil {
			b.Fatal(err)
		}
	}
	if err := ing.Close(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
}

// benchShardCluster opens a 2-shard cluster over the micro fixture graph
// with one standing sum query — the same fixture as OpIngestorThroughput,
// so the coordinator's routing + replication overhead is directly
// comparable to the single-process ingest path.
func benchShardCluster(b *testing.B) (*shard.Cluster, *shard.Query, []eagr.Event) {
	g := workload.SocialGraph(2000, 8, 1)
	cluster, err := shard.Open(g, shard.Options{
		Shards:  2,
		Session: eagr.Options{Algorithm: "baseline", Mode: "all-push"},
		Ingest: eagr.IngestOptions{
			BatchSize:     1024,
			QueueDepth:    8,
			FlushInterval: -1,
			Clock:         eagr.LogicalClock(),
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { cluster.Close() })
	q, err := cluster.Register(eagr.QuerySpec{Aggregate: "sum"})
	if err != nil {
		b.Fatal(err)
	}
	wl := workload.ZipfWorkload(g.MaxID(), 1.0, 1e6, 1, 1)
	return cluster, q, benchfix.Writes(workload.Events(wl, 1<<16, 2))
}

// benchShardedIngest is the -engine-bench twin of internal/shard's
// BenchmarkOpShardedIngest: per-event routing cost on a content stream.
func benchShardedIngest(b *testing.B) {
	cluster, _, writes := benchShardCluster(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := writes[i%len(writes)]
		if err := cluster.Send(eagr.NewWrite(ev.Node, ev.Value, int64(i+1))); err != nil {
			b.Fatal(err)
		}
	}
	if err := cluster.Flush(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
}

// benchShardedRead is the twin of BenchmarkOpShardedRead: a merged read
// (one wire PAO snapshot per shard, merged and finalized) on a loaded
// 2-shard cluster.
func benchShardedRead(b *testing.B) {
	cluster, q, writes := benchShardCluster(b)
	for i, ev := range writes[:1<<14] {
		if err := cluster.Send(eagr.NewWrite(ev.Node, ev.Value, int64(i+1))); err != nil {
			b.Fatal(err)
		}
	}
	if err := cluster.Flush(); err != nil {
		b.Fatal(err)
	}
	maxID := cluster.Shard(0).Graph().MaxID()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.Read(eagr.NodeID(i % maxID)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
}

// benchDurableSession opens a durable session over the micro fixture
// graph with one standing sum query and n pre-applied writes.
func benchDurableSession(b *testing.B, dir string, fsync eagr.FsyncPolicy, n int) *eagr.Session {
	g := workload.SocialGraph(2000, 8, 1)
	sess, _, err := eagr.OpenDurable(g, eagr.DurabilityOptions{Dir: dir, Fsync: fsync})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sess.Register(eagr.QuerySpec{Aggregate: "sum", WindowTuples: 4}); err != nil {
		b.Fatal(err)
	}
	wl := workload.ZipfWorkload(g.MaxID(), 1.0, 1e6, 1, 1)
	writes := benchfix.Writes(workload.Events(wl, n, 2))
	batch := make([]eagr.Event, 0, 256)
	for i, ev := range writes {
		batch = append(batch, eagr.NewWrite(ev.Node, ev.Value, int64(i+1)))
		if len(batch) == cap(batch) || i == len(writes)-1 {
			if err := sess.ApplyBatch(batch); err != nil {
				b.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	return sess
}

// benchCheckpointWrite measures one full checkpoint (graph + queries +
// window suffixes, temp+rename) of a loaded durable session.
func benchCheckpointWrite(b *testing.B) {
	sess := benchDurableSession(b, b.TempDir(), eagr.FsyncOff, 1<<14)
	defer sess.CloseDurability()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sess.Checkpoint(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
}

// benchRecoverReplayTail measures cold recovery: open the directory, load
// the latest checkpoint, and replay a WAL tail of recoverTailEvents
// events through the normal apply path. SimulateCrash (not
// CloseDurability) between iterations keeps the tail in place.
const recoverTailEvents = 1 << 13

func benchRecoverReplayTail(b *testing.B) {
	dir := b.TempDir()
	sess := benchDurableSession(b, dir, eagr.FsyncOff, recoverTailEvents)
	if err := sess.SimulateCrash(); err != nil {
		b.Fatal(err)
	}
	var replayed int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s2, rec, err := eagr.OpenDurable(nil, eagr.DurabilityOptions{Dir: dir})
		if err != nil {
			b.Fatal(err)
		}
		replayed = rec.ReplayedEvents
		if err := s2.SimulateCrash(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if replayed == 0 {
		b.Fatal("recovery replayed no events; the fixture WAL tail is missing")
	}
	b.ReportMetric(float64(replayed), "events/op")
}

// benchTopoSession is the -engine-bench twin of the repo's
// topoBenchSession fixture: a session over the standard 2000-node social
// graph with one topology query standing and a 4096-event tape of random
// edge adds/removes (duplicate adds and missed removes ride along, as in
// any real churn stream).
func benchTopoSession(b *testing.B, spec eagr.QuerySpec) (*eagr.Session, *eagr.Query, []eagr.Event) {
	b.Helper()
	g := workload.SocialGraph(2000, 8, 1)
	sess, err := eagr.Open(g)
	if err != nil {
		b.Fatal(err)
	}
	q, err := sess.Register(spec)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	n := eagr.NodeID(g.MaxID())
	tape := make([]eagr.Event, 4096)
	for i := range tape {
		u, w := eagr.NodeID(rng.Intn(int(n))), eagr.NodeID(rng.Intn(int(n)))
		if i%2 == 0 {
			tape[i] = eagr.NewEdgeAdd(u, w, int64(i+1))
		} else {
			tape[i] = eagr.NewEdgeRemove(u, w, int64(i+1))
		}
	}
	return sess, q, tape
}

// benchTriangleChurn is the twin of BenchmarkOpTriangleChurn: one
// structural event through ApplyBatch with a triangles query standing —
// the per-edge O(degree-overlap) incremental delta, never a recount.
func benchTriangleChurn(b *testing.B) {
	sess, _, tape := benchTopoSession(b, eagr.QuerySpec{Aggregate: "triangles"})
	ev := make([]eagr.Event, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev[0] = tape[i%len(tape)]
		_ = sess.ApplyBatch(ev)
	}
}

// benchDensityRead is the twin of BenchmarkOpDensityRead: a standing
// density read — degree lookup plus one fixed-point division over the
// incrementally-maintained triangle count.
func benchDensityRead(b *testing.B) {
	sess, q, tape := benchTopoSession(b, eagr.QuerySpec{Aggregate: "density"})
	// Per-event skips (duplicate edges) are expected in the tape.
	_ = sess.ApplyBatch(tape)
	maxID := sess.Graph().MaxID()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.Read(eagr.NodeID(i % maxID)); err != nil {
			b.Fatal(err)
		}
	}
}

// benchEgoBetweennessRecompute is the twin of
// BenchmarkOpEgoBetweennessRecompute: one watermark tick of the windowed
// ego-betweenness view — a structural event dirties the egos it touched,
// then ExpireAll crosses the window and recomputes exactly those.
func benchEgoBetweennessRecompute(b *testing.B) {
	sess, _, tape := benchTopoSession(b, eagr.QuerySpec{Aggregate: "ego-betweenness", WindowTime: 1})
	ev := make([]eagr.Event, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev[0] = tape[i%len(tape)]
		_ = sess.ApplyBatch(ev)
		sess.ExpireAll(int64(i + 2))
	}
}

// engineBenchResult is one micro-benchmark's measurement, serialized into
// BENCH_engine.json so successive PRs have a perf trajectory to compare
// against.
type engineBenchResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// engineBenchFile is the BENCH_engine.json schema. Baseline holds the
// numbers measured at the seed (before the compiled-plan write path);
// Current is refreshed by every `eagr-bench -engine-bench` run.
type engineBenchFile struct {
	Host     string                       `json:"host"`
	GoMaxPro int                          `json:"gomaxprocs"`
	Baseline map[string]engineBenchResult `json:"baseline"`
	Current  map[string]engineBenchResult `json:"current"`
}

// seedBaseline is the pre-change measurement of the BenchmarkOp* micros,
// recorded once so the acceptance criteria stay checkable across PRs. The
// OpSum* rows were measured at the seed (synchronous pointer-walking
// propagation, per-write allocations); the OpPullRead rows were measured
// just before the pooled PAO arena landed (per-read PAO allocation on the
// MAX/TOP-K pull path).
var seedBaseline = map[string]engineBenchResult{
	"OpSumDataflow":  {NsPerOp: 162.6, OpsPerSec: 6.15e6, AllocsPerOp: 1, BytesPerOp: 54},
	"OpSumAllPush":   {NsPerOp: 458.0, OpsPerSec: 2.18e6, AllocsPerOp: 2, BytesPerOp: 420},
	"OpSumAllPull":   {NsPerOp: 176.8, OpsPerSec: 5.66e6, AllocsPerOp: 1, BytesPerOp: 39},
	"OpMaxPullRead":  {NsPerOp: 771.7, OpsPerSec: 1.30e6, AllocsPerOp: 5, BytesPerOp: 438},
	"OpTopKPullRead": {NsPerOp: 1379.0, OpsPerSec: 0.73e6, AllocsPerOp: 5, BytesPerOp: 394},
	// Measured just before merged multi-query overlays landed: 8
	// partially-overlapping SUM queries could only compile as 8 distinct
	// overlays (the MergedVsDistinct fixture), and a WriteBatch against a
	// subscribed engine fanned out once per write, not once per batch.
	"OpSumPushMergedQueries": {NsPerOp: 1972.0, OpsPerSec: 0.51e6, AllocsPerOp: 0, BytesPerOp: 0},
	"OpSubscribeFanoutBatch": {NsPerOp: 1007.0, OpsPerSec: 0.99e6, AllocsPerOp: 0, BytesPerOp: 0},
	// Measured just before the unified streaming-ingestion API landed, on
	// the same fixtures: the mixed content/structural stream applied one
	// event at a time through Write/AddEdge/RemoveEdge (every structural
	// event paying a full serialized repair), and the Ingestor's
	// per-event cost compared against a bare per-event Session.Write (no
	// batching, no watermark, caller-threaded time).
	"OpIngestMixedBatch":   {NsPerOp: 77988.0, OpsPerSec: 12.8e3, AllocsPerOp: 294, BytesPerOp: 62686},
	"OpIngestorThroughput": {NsPerOp: 203.2, OpsPerSec: 4.92e6, AllocsPerOp: 0, BytesPerOp: 0},
	// Measured when durability landed (fsync=off): one full checkpoint of
	// a loaded 2k-node session, and cold recovery replaying a ~6.5k-event
	// WAL tail through the normal apply path.
	"OpCheckpointWrite":   {NsPerOp: 4.78e6, OpsPerSec: 209, AllocsPerOp: 30155, BytesPerOp: 982803},
	"OpRecoverReplayTail": {NsPerOp: 1.245e8, OpsPerSec: 8, AllocsPerOp: 452642, BytesPerOp: 44219904},
	// Measured when the sharded coordinator landed: per-event routing on a
	// 2-shard cluster (vs ~203 ns/op for the single-process Ingestor on
	// the same fixture — the delta is the routing lock and owner hash),
	// and a merged 2-shard scatter-gather read.
	"OpShardedIngest": {NsPerOp: 366.7, OpsPerSec: 2.73e6, AllocsPerOp: 0, BytesPerOp: 0},
	"OpShardedRead":   {NsPerOp: 449.5, OpsPerSec: 2.22e6, AllocsPerOp: 4, BytesPerOp: 240},
	// Measured just before the self-driving adaptivity controller landed:
	// the shifting-Zipf fixture could only run its stale seed-1 plan
	// against the seed-7 hot set (the value the Off variant still
	// reproduces), and the online resync cutover at the two fixture sizes.
	"OpAutotuneShiftingZipf": {NsPerOp: 134.3, OpsPerSec: 7.45e6, AllocsPerOp: 0, BytesPerOp: 0},
	"OpResyncCutover2k":      {NsPerOp: 1.90e6, OpsPerSec: 527, AllocsPerOp: 10660, BytesPerOp: 1067289},
	"OpResyncCutover8k":      {NsPerOp: 8.68e6, OpsPerSec: 115, AllocsPerOp: 41527, BytesPerOp: 4339305},
	// Measured just before the multi-core ingestion pipeline landed: a
	// watermark advance walked every writer (the value ExpireAllScan still
	// reproduces — 2000 live time-window writers, ~1 actual expiry per
	// tick), and the Ingestor had a single sequential apply worker, so the
	// per-core rows all start from the one-worker per-event Send cost.
	// Measured when topology-valued aggregates landed — the first recorded
	// numbers for the topo micros (one incremental triangle delta per
	// structural event, a standing fixed-point density read, one windowed
	// ego-betweenness watermark tick over the accumulated churn graph) and
	// the pre-existing resync cutover at the new 32k overlay size.
	"OpResyncCutover32k":                 {NsPerOp: 2.93e7, OpsPerSec: 34, AllocsPerOp: 159291, BytesPerOp: 17209201},
	"OpTriangleChurn":                    {NsPerOp: 678.4, OpsPerSec: 1.47e6, AllocsPerOp: 7, BytesPerOp: 158},
	"OpDensityRead":                      {NsPerOp: 51.3, OpsPerSec: 19.5e6, AllocsPerOp: 0, BytesPerOp: 0},
	"OpEgoBetweennessRecompute":          {NsPerOp: 2.20e6, OpsPerSec: 454, AllocsPerOp: 7, BytesPerOp: 499},
	"OpExpireSparse":                     {NsPerOp: 67697.0, OpsPerSec: 14.8e3, AllocsPerOp: 0, BytesPerOp: 0},
	"OpIngestorThroughputParallel/cpu=1": {NsPerOp: 312.0, OpsPerSec: 3.21e6, AllocsPerOp: 0, BytesPerOp: 0},
	"OpIngestorThroughputParallel/cpu=2": {NsPerOp: 312.0, OpsPerSec: 3.21e6, AllocsPerOp: 0, BytesPerOp: 0},
	"OpIngestorThroughputParallel/cpu=4": {NsPerOp: 312.0, OpsPerSec: 3.21e6, AllocsPerOp: 0, BytesPerOp: 0},
}

func toResult(r testing.BenchmarkResult) engineBenchResult {
	ns := float64(r.T.Nanoseconds()) / float64(r.N)
	out := engineBenchResult{
		NsPerOp:     ns,
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if ns > 0 {
		out.OpsPerSec = 1e9 / ns
	}
	return out
}

// runEngineBench measures the BenchmarkOp* micros (via the shared
// internal/benchfix fixture, the same one bench_test.go drives) through
// testing.Benchmark and writes BENCH_engine.json (current + recorded seed
// baseline) to path. cpus lists the GOMAXPROCS values the
// parallel-ingest sweep pins (the -cpu flag).
func runEngineBench(path string, cpus []int) error {
	cur := map[string]engineBenchResult{}
	fmt.Println("engine micro-benchmarks (this takes ~30s):")
	micros := []struct {
		name, alg, mode string
	}{
		{"OpSumDataflow", construct.AlgVNMA, "dataflow"},
		{"OpSumAllPush", "baseline", "push"},
		{"OpSumAllPull", "baseline", "pull"},
	}
	for _, m := range micros {
		eng, events, err := benchfix.MicroEngine(m.alg, m.mode, agg.Sum{})
		if err != nil {
			return err
		}
		r := toResult(testing.Benchmark(func(b *testing.B) {
			benchfix.RunMixed(b, eng, events)
		}))
		cur[m.name] = r
		fmt.Printf("  %-16s %10.1f ns/op %12.0f ops/s %3d allocs/op\n",
			m.name, r.NsPerOp, r.OpsPerSec, r.AllocsPerOp)
	}
	// Non-scalar pull reads (MAX/TOP-K): tracks the pooled PAO arena.
	pulls := []struct {
		name string
		a    agg.Aggregate
	}{
		{"OpMaxPullRead", agg.Max{}},
		{"OpTopKPullRead", agg.TopK{K: 3}},
	}
	for _, m := range pulls {
		eng, reads, err := benchfix.PullReadEngine(m.a)
		if err != nil {
			return err
		}
		r := toResult(testing.Benchmark(func(b *testing.B) {
			benchfix.RunReads(b, eng, reads)
		}))
		cur[m.name] = r
		fmt.Printf("  %-16s %10.1f ns/op %12.0f ops/s %3d allocs/op\n",
			m.name, r.NsPerOp, r.OpsPerSec, r.AllocsPerOp)
	}
	// Multi-query sessions: write fan-out to 8 standing queries, shared
	// (one overlay) vs distinct (8 engines), plus the subscription fan-out
	// path (one all-readers subscriber, no consumer, drop-oldest).
	multis := []struct {
		name   string
		n      int
		shared bool
	}{
		{"OpSumPush1Query", 1, true},
		{"OpSumPush8QueriesShared", 8, true},
		{"OpSumPush8QueriesDistinct", 8, false},
	}
	for _, m := range multis {
		ms, writes, err := benchfix.MultiMicro(m.n, m.shared)
		if err != nil {
			return err
		}
		r := toResult(testing.Benchmark(func(b *testing.B) {
			benchfix.RunMultiWrites(b, ms, writes)
		}))
		cur[m.name] = r
		fmt.Printf("  %-26s %10.1f ns/op %12.0f ops/s %3d allocs/op\n",
			m.name, r.NsPerOp, r.OpsPerSec, r.AllocsPerOp)
	}
	// Merged-overlay sharing: 8 partially-overlapping SUM queries compiled
	// into ONE merged family overlay (per-query reader views) vs 8
	// distinct overlays the write fans out to.
	mergeds := []struct {
		name   string
		merged bool
	}{
		{"OpSumPushMergedQueries", true},
		{"OpSumPushMergedVsDistinct", false},
	}
	for _, m := range mergeds {
		ms, writes, err := benchfix.MergedMicro(8, m.merged)
		if err != nil {
			return err
		}
		r := toResult(testing.Benchmark(func(b *testing.B) {
			benchfix.RunMultiWrites(b, ms, writes)
		}))
		cur[m.name] = r
		fmt.Printf("  %-26s %10.1f ns/op %12.0f ops/s %3d allocs/op\n",
			m.name, r.NsPerOp, r.OpsPerSec, r.AllocsPerOp)
	}
	{
		eng, writes, err := benchfix.SubscribedEngine(1024)
		if err != nil {
			return err
		}
		r := toResult(testing.Benchmark(func(b *testing.B) {
			benchfix.RunWrites(b, eng, writes)
		}))
		cur["OpSubscribeFanout"] = r
		fmt.Printf("  %-26s %10.1f ns/op %12.0f ops/s %3d allocs/op\n",
			"OpSubscribeFanout", r.NsPerOp, r.OpsPerSec, r.AllocsPerOp)
	}
	{
		// The same subscribed engine through WriteBatch: fan-out coalesced
		// to once per touched reader per batch.
		eng, writes, err := benchfix.SubscribedEngine(1024)
		if err != nil {
			return err
		}
		r := toResult(testing.Benchmark(func(b *testing.B) {
			benchfix.RunWriteBatch(b, eng, writes, 1)
		}))
		cur["OpSubscribeFanoutBatch"] = r
		fmt.Printf("  %-26s %10.1f ns/op %12.0f ops/s %3d allocs/op\n",
			"OpSubscribeFanoutBatch", r.NsPerOp, r.OpsPerSec, r.AllocsPerOp)
	}
	{
		// Unified mixed ingestion: ApplyBatch over a content stream with
		// periodic structural churn bursts, each burst coalesced into one
		// overlay repair per query.
		ms, events, err := benchfix.MixedBatchFixture()
		if err != nil {
			return err
		}
		r := toResult(testing.Benchmark(func(b *testing.B) {
			benchfix.RunApplyBatch(b, ms, events)
		}))
		cur["OpIngestMixedBatch"] = r
		fmt.Printf("  %-26s %10.1f ns/op %12.0f ops/s %3d allocs/op\n",
			"OpIngestMixedBatch", r.NsPerOp, r.OpsPerSec, r.AllocsPerOp)
	}
	{
		// The streaming Ingestor handle end to end: Send through buffer,
		// bounded queue and background ApplyBatch worker, watermark-driven
		// expiry on (content-only stream; mirror of BenchmarkOpIngestorThroughput).
		r := toResult(testing.Benchmark(benchIngestorThroughput))
		cur["OpIngestorThroughput"] = r
		fmt.Printf("  %-26s %10.1f ns/op %12.0f ops/s %3d allocs/op\n",
			"OpIngestorThroughput", r.NsPerOp, r.OpsPerSec, r.AllocsPerOp)
	}
	// Pipelined ingestion across core counts (the -cpu sweep): the same
	// content stream in SendEvents slabs through the partitioned apply
	// worker pool, GOMAXPROCS pinned per run. Fig 13(d)'s scaling story at
	// micro-benchmark scale.
	{
		prev := runtime.GOMAXPROCS(0)
		for _, c := range cpus {
			runtime.GOMAXPROCS(c)
			name := fmt.Sprintf("OpIngestorThroughputParallel/cpu=%d", c)
			r := toResult(testing.Benchmark(benchIngestorThroughputParallel))
			cur[name] = r
			fmt.Printf("  %-34s %10.1f ns/op %12.0f ops/s %3d allocs/op\n",
				name, r.NsPerOp, r.OpsPerSec, r.AllocsPerOp)
		}
		runtime.GOMAXPROCS(prev)
	}
	// Watermark expiry with 2000 live time-window writers and ~1 actual
	// expiry per tick: the heap-indexed O(expired) path vs the full-walk
	// O(writers) reference it replaced.
	expiries := []struct {
		name string
		scan bool
	}{
		{"OpExpireSparse", false},
		{"OpExpireSparseScan", true},
	}
	for _, m := range expiries {
		eng, err := benchfix.ExpiryEngine(1000)
		if err != nil {
			return err
		}
		scan := m.scan
		r := toResult(testing.Benchmark(func(b *testing.B) {
			benchfix.RunExpireSparse(b, eng, scan)
		}))
		cur[m.name] = r
		fmt.Printf("  %-26s %10.1f ns/op %12.0f ops/s %3d allocs/op\n",
			m.name, r.NsPerOp, r.OpsPerSec, r.AllocsPerOp)
	}
	// Scale-out: the sharded coordinator's per-event routing cost (hash
	// the owner, stamp time, enqueue on that shard's Ingestor) and merged
	// scatter-gather reads on a 2-shard in-process cluster.
	shardeds := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"OpShardedIngest", benchShardedIngest},
		{"OpShardedRead", benchShardedRead},
	}
	for _, m := range shardeds {
		r := toResult(testing.Benchmark(m.fn))
		cur[m.name] = r
		fmt.Printf("  %-26s %10.1f ns/op %12.0f ops/s %3d allocs/op\n",
			m.name, r.NsPerOp, r.OpsPerSec, r.AllocsPerOp)
	}
	// Self-driving adaptivity: the shifting-Zipf drift fixture with the
	// controller adapting during warm-up vs the stale plan as compiled,
	// and the online resync cutover primitive at two overlay sizes.
	autotunes := []struct {
		name  string
		tuned bool
	}{
		{"OpAutotuneShiftingZipf", true},
		{"OpAutotuneShiftingZipfOff", false},
	}
	for _, m := range autotunes {
		sys, events, err := benchfix.AutotuneShiftFixture(m.tuned)
		if err != nil {
			return err
		}
		r := toResult(testing.Benchmark(func(b *testing.B) {
			benchfix.RunSystemMixed(b, sys, events)
		}))
		cur[m.name] = r
		fmt.Printf("  %-26s %10.1f ns/op %12.0f ops/s %3d allocs/op\n",
			m.name, r.NsPerOp, r.OpsPerSec, r.AllocsPerOp)
	}
	for _, n := range []int{2000, 8000, 32000} {
		eng, err := benchfix.ResyncEngine(n)
		if err != nil {
			return err
		}
		name := fmt.Sprintf("OpResyncCutover%dk", n/1000)
		r := toResult(testing.Benchmark(func(b *testing.B) {
			benchfix.RunResync(b, eng)
		}))
		cur[name] = r
		fmt.Printf("  %-26s %10.1f ns/op %12.0f ops/s %3d allocs/op\n",
			name, r.NsPerOp, r.OpsPerSec, r.AllocsPerOp)
	}
	// Topology-valued aggregates: incremental triangle maintenance under
	// edge churn, a standing density read, and one windowed
	// ego-betweenness watermark tick.
	topos := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"OpTriangleChurn", benchTriangleChurn},
		{"OpDensityRead", benchDensityRead},
		{"OpEgoBetweennessRecompute", benchEgoBetweennessRecompute},
	}
	for _, m := range topos {
		r := toResult(testing.Benchmark(m.fn))
		cur[m.name] = r
		fmt.Printf("  %-26s %10.1f ns/op %12.0f ops/s %3d allocs/op\n",
			m.name, r.NsPerOp, r.OpsPerSec, r.AllocsPerOp)
	}
	// Durability: checkpoint write cost on a loaded session, and cold
	// recovery replaying an 8k-event WAL tail through the apply path.
	durables := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"OpCheckpointWrite", benchCheckpointWrite},
		{"OpRecoverReplayTail", benchRecoverReplayTail},
	}
	for _, m := range durables {
		r := toResult(testing.Benchmark(m.fn))
		cur[m.name] = r
		fmt.Printf("  %-26s %10.1f ns/op %12.0f ops/s %3d allocs/op\n",
			m.name, r.NsPerOp, r.OpsPerSec, r.AllocsPerOp)
	}
	workers := []int{1}
	if p := runtime.GOMAXPROCS(0); p > 1 {
		workers = append(workers, p)
	}
	for _, w := range workers {
		eng, events, err := benchfix.MicroEngine("baseline", "push", agg.Sum{})
		if err != nil {
			return err
		}
		writes := benchfix.Writes(events)
		name := fmt.Sprintf("OpWriteBatch%d", w)
		r := toResult(testing.Benchmark(func(b *testing.B) {
			benchfix.RunWriteBatch(b, eng, writes, w)
		}))
		cur[name] = r
		fmt.Printf("  %-16s %10.1f ns/op %12.0f ops/s %3d allocs/op\n",
			name, r.NsPerOp, r.OpsPerSec, r.AllocsPerOp)
	}
	host, _ := os.Hostname()
	out := engineBenchFile{
		Host:     host,
		GoMaxPro: runtime.GOMAXPROCS(0),
		Baseline: seedBaseline,
		Current:  cur,
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
