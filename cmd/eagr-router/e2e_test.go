package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"slices"
	"strings"
	"testing"
	"time"

	eagr "repro"
	"repro/internal/workload"
)

// TestRouterE2E is the out-of-process mirror of internal/shard's oracle
// property test: it builds the real eagr-serve and eagr-router binaries,
// runs a two-shard fleet over HTTP, drives a random mixed stream (content,
// edge churn, node churn) through the router, and requires every merged
// read to match a never-sharded in-process Session that saw the same
// stream. Gated behind EAGR_E2E=1 — it compiles binaries and binds ports.
func TestRouterE2E(t *testing.T) {
	if os.Getenv("EAGR_E2E") != "1" {
		t.Skip("set EAGR_E2E=1 to run the two-shard router end-to-end test")
	}

	bin := t.TempDir()
	for _, pkg := range []string{"eagr-serve", "eagr-router"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(bin, pkg), "repro/cmd/"+pkg)
		cmd.Dir = "../.."
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", pkg, err, out)
		}
	}

	// Both shards and the oracle share one graph seed; the shards register
	// the same flag-derived initial query ({sum, 3 tuples}) the oracle
	// registers first, keeping overlay compilation aligned on all sides.
	const (
		nodes, degree = 48, 4
		graphSeed     = 7
	)
	shardAddrs := []string{freeAddr(t), freeAddr(t)}
	for i, addr := range shardAddrs {
		spawn(t, fmt.Sprintf("shard%d", i), filepath.Join(bin, "eagr-serve"),
			"-listen", addr,
			"-graph", "social",
			"-nodes", fmt.Sprint(nodes),
			"-degree", fmt.Sprint(degree),
			"-seed", fmt.Sprint(graphSeed),
			"-window", "3",
			"-ingest-manual-expire",
		)
	}
	var shardURLs []string
	for _, addr := range shardAddrs {
		shardURLs = append(shardURLs, "http://"+addr)
	}
	for _, u := range shardURLs {
		waitReady(t, u)
	}
	routerAddr := freeAddr(t)
	spawn(t, "router", filepath.Join(bin, "eagr-router"),
		"-listen", routerAddr,
		"-shards", strings.Join(shardURLs, ","),
	)
	routerURL := "http://" + routerAddr
	waitReady(t, routerURL)

	oracle, err := eagr.Open(workload.SocialGraph(nodes, degree, graphSeed), eagr.Options{Iterations: 6})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := oracle.Register(eagr.QuerySpec{Aggregate: "sum", WindowTuples: 3}); err != nil {
		t.Fatal(err)
	}

	// Runtime registrations through the router: a 2-hop member that merges
	// into the initial query's overlay family, plus independent time- and
	// tuple-window families. All exact under sharding.
	specs := []eagr.QuerySpec{
		{Aggregate: "sum", WindowTuples: 3, Hops: 2},
		{Aggregate: "count", WindowTime: 40},
		{Aggregate: "max", WindowTuples: 4},
		{Aggregate: "distinct", WindowTime: 50},
		// Topology-valued: the router proxies one replica's exact value
		// instead of merging PAOs.
		{Aggregate: "density"},
		{Aggregate: "triangles"},
	}
	var oqs []*eagr.Query
	var routerIDs []int
	for _, spec := range specs {
		oq, err := oracle.Register(spec)
		if err != nil {
			t.Fatalf("oracle %+v: %v", spec, err)
		}
		oqs = append(oqs, oq)
		body, _ := json.Marshal(map[string]any{
			"aggregate":    spec.Aggregate,
			"windowTuples": spec.WindowTuples,
			"windowTime":   spec.WindowTime,
			"hops":         spec.Hops,
		})
		resp, err := http.Post(routerURL+"/queries", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var reg struct {
			ID int `json:"id"`
		}
		err = json.NewDecoder(resp.Body).Decode(&reg)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusCreated {
			t.Fatalf("router register %+v: status %d (%v)", spec, resp.StatusCode, err)
		}
		routerIDs = append(routerIDs, reg.ID)
	}

	// The same generator as the in-process oracle test: mostly content,
	// with edge and node churn. Structural events replicate to both shards
	// and the oracle, so the three graphs (and their free-list node-id
	// allocators) stay identical.
	rng := rand.New(rand.NewSource(11))
	alive := oracle.Graph().Nodes()
	ts := int64(1)
	for batch := 0; batch < 12; batch++ {
		n := 30 + rng.Intn(31)
		events := make([]eagr.Event, 0, n)
		for i := 0; i < n; i++ {
			ts += int64(rng.Intn(3))
			pick := func() eagr.NodeID { return alive[rng.Intn(len(alive))] }
			switch p := rng.Float64(); {
			case p < 0.65 || len(alive) < 8:
				events = append(events, eagr.NewWrite(pick(), int64(rng.Intn(15)-4), ts))
			case p < 0.75:
				events = append(events, eagr.NewEdgeAdd(pick(), pick(), ts))
			case p < 0.85:
				events = append(events, eagr.NewEdgeRemove(pick(), pick(), ts))
			case p < 0.93:
				events = append(events, eagr.NewNodeAdd(ts))
			default:
				victim := rng.Intn(len(alive))
				events = append(events, eagr.NewNodeRemove(alive[victim], ts))
				alive = slices.Delete(alive, victim, victim+1)
			}
		}

		var ndjson bytes.Buffer
		for _, ev := range events {
			line, _ := json.Marshal(map[string]any{
				"kind": ev.Kind.String(), "node": ev.Node, "peer": ev.Peer,
				"value": ev.Value, "ts": ev.TS,
			})
			ndjson.Write(line)
			ndjson.WriteByte('\n')
		}
		resp, err := http.Post(routerURL+"/ingest", "application/x-ndjson", &ndjson)
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		var ack struct {
			Accepted  int    `json:"accepted"`
			Watermark *int64 `json:"watermark"`
			Error     string `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&ack)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK || ack.Error != "" {
			t.Fatalf("batch %d: ingest status %d, ack %+v (%v)", batch, resp.StatusCode, ack, err)
		}
		if ack.Accepted != len(events) {
			t.Fatalf("batch %d: accepted %d of %d events", batch, ack.Accepted, len(events))
		}

		// Mirror on the oracle: same events, then expiry at the router's
		// fleet-minimum watermark. Apply errors (duplicate edges, missed
		// removes) are the same ones the shards skipped — not fatal.
		added, _ := oracle.ApplyBatchNodes(events)
		alive = append(alive, added...)
		if ack.Watermark != nil {
			oracle.ExpireAll(*ack.Watermark)
		}

		if batch%4 == 3 {
			compareAll(t, batch, routerURL, oracle, oqs, routerIDs)
		}
	}
}

// compareAll reads every router-registered query at every node id ever
// allocated, over HTTP, against the oracle — values and error presence.
func compareAll(t *testing.T, batch int, routerURL string, oracle *eagr.Session, oqs []*eagr.Query, ids []int) {
	t.Helper()
	maxID := oracle.Graph().MaxID()
	for qi, oq := range oqs {
		for v := 0; v < maxID; v++ {
			want, werr := oq.Read(eagr.NodeID(v))
			resp, err := http.Get(fmt.Sprintf("%s/queries/%d/read?node=%d", routerURL, ids[qi], v))
			if err != nil {
				t.Fatal(err)
			}
			var got struct {
				Valid  bool    `json:"valid"`
				Scalar int64   `json:"scalar"`
				List   []int64 `json:"list"`
			}
			decErr := json.NewDecoder(resp.Body).Decode(&got)
			resp.Body.Close()
			if (werr != nil) != (resp.StatusCode != http.StatusOK) {
				t.Fatalf("batch %d, query %+v, node %d: oracle err %v, router status %d",
					batch, oq.Spec(), v, werr, resp.StatusCode)
			}
			if werr != nil {
				continue
			}
			if decErr != nil {
				t.Fatalf("batch %d, query %+v, node %d: decode: %v", batch, oq.Spec(), v, decErr)
			}
			res := eagr.Result{Valid: got.Valid, Scalar: got.Scalar, List: got.List}
			if !want.Eq(res) {
				t.Fatalf("batch %d, query %+v, node %d: oracle %+v, router %+v",
					batch, oq.Spec(), v, want, res)
			}
		}
	}
}

// freeAddr grabs an OS-assigned 127.0.0.1 port and releases it for the
// child process to bind. The gap is racy in principle; in practice the
// kernel does not hand the port back out this fast.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// spawn starts a child binary, captures its combined output, and kills it
// (dumping the output first on failure) when the test ends.
func spawn(t *testing.T, name, bin string, args ...string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", name, err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		if t.Failed() {
			t.Logf("%s output:\n%s", name, out.String())
		}
	})
}

// waitReady polls GET /stats until the server answers.
func waitReady(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/stats")
		if err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("%s not ready after 15s", base)
}
