// Command eagr-router fronts a fleet of eagr-serve shard servers with one
// EAGr-shaped HTTP surface, scaling ingest beyond a single process the way
// internal/shard's in-process Cluster does across Sessions:
//
//   - content writes are hash-routed to their writer's owner shard
//     (internal/shard.Owner), so each shard holds the complete window
//     history of exactly the writers it owns;
//   - structural events (edge/node changes) fan out to EVERY shard in
//     stream order, keeping the shards identical replicas of the graph —
//     which is what makes per-shard reader PAOs a partition of the global
//     aggregation state;
//   - reads scatter-gather: the router fetches each shard's un-finalized
//     partial aggregate (GET /queries/{id}/pao), merges the PAOs
//     (agg.MergeWires) and finalizes once — exact for every built-in
//     aggregate except topk~ (bounded candidate lists are admission-order
//     dependent; see internal/shard). Topology-valued aggregates (density,
//     triangles, wedges, ego-betweenness) have no mergeable PAO and need
//     none: structure is replicated, so the router proxies GET /read from
//     any one shard and the answer is already fleet-exact — preferring the
//     first healthy shard, falling through on transport failure;
//   - transient per-shard failures on IDEMPOTENT requests (GETs, POST
//     /expire) retry with capped exponential backoff before the fan-out
//     fails; non-idempotent traffic (/ingest, /edge, /node, query
//     registration) never retries — a duplicate apply would corrupt the
//     replicas — and instead surfaces the error to the client, whose
//     stream-level retry can reconcile;
//   - GET /healthz on each shard backs the router's own health view,
//     surfaced under "shardHealth" in GET /stats;
//   - time is centralized: the router stamps ts-less events into the
//     stream's time domain before routing, and after every synchronous
//     /ingest computes the fleet-wide MINIMUM watermark and broadcasts it
//     via POST /expire. Run the shards with -ingest-manual-expire so a
//     shard that is merely ahead on its slice of the stream cannot expire
//     windows the slowest shard still needs.
//
// Usage:
//
//	eagr-serve  -listen 127.0.0.1:8081 -graph social -nodes 10000 -seed 7 -ingest-manual-expire &
//	eagr-serve  -listen 127.0.0.1:8082 -graph social -nodes 10000 -seed 7 -ingest-manual-expire &
//	eagr-router -listen :8080 -shards http://127.0.0.1:8081,http://127.0.0.1:8082
//
// Every shard must be started over the SAME graph (same -graph/-nodes/
// -degree/-seed or the same -edgelist): the router replicates structure
// but does not bootstrap it.
//
// Routed surface:
//
//	POST   /queries               register on every shard, returns the router id
//	GET    /queries               list router-registered queries
//	DELETE /queries/{id}          retire on every shard
//	GET    /queries/{id}/read?node=1   scatter-gather PAO merge
//	POST   /ingest                NDJSON stream, routed (see above)
//	POST   /edge, DELETE /edge    structural fan-out
//	POST   /node, DELETE /node    structural fan-out
//	POST   /expire                broadcast to every shard
//	GET    /stats                 per-shard stats plus router totals
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/agg"
	"repro/internal/graph"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/topo"
)

// maxIngestLine mirrors internal/server's per-line bound.
const maxIngestLine = 1 << 20

type routerQuery struct {
	ID        int    `json:"id"`
	Aggregate string `json:"aggregate"`
	// Topo marks a topology-valued query: reads proxy one shard's exact
	// value instead of merging PAOs.
	Topo bool `json:"topo,omitempty"`
	// ShardIDs[i] is the query's id on shard i — shards assign their own
	// ids, the router owns the mapping.
	ShardIDs []int `json:"shardIDs"`
}

type router struct {
	shards []string // shard base URLs, index = shard number
	client *http.Client
	mux    *http.ServeMux

	// mu serializes /ingest and structural fan-outs: routing decides a
	// per-shard order for interleaved events, and that order must be the
	// one the shards see (two racing fan-outs could otherwise apply
	// structural events in different orders on different shards).
	mu       sync.Mutex
	streamTS int64 // max explicit ingest timestamp seen (under mu)

	qmu     sync.Mutex
	queries map[int]*routerQuery
	nextID  int

	writes  int64 // content events routed (under mu)
	reads   int64 // scatter-gather reads served (under qmu)
	retries int64 // idempotent per-shard retries that went on to succeed (atomic-free: under qmu)

	// retryBase is the first backoff delay; tests shrink it. Growth is
	// 2x per attempt, capped at 8*retryBase, retryAttempts tries total.
	retryBase time.Duration
}

// retryAttempts bounds idempotent retries: first try + 3 retries.
const retryAttempts = 4

func newRouter(shards []string) *router {
	rt := &router{
		shards:    shards,
		client:    &http.Client{Timeout: 30 * time.Second},
		mux:       http.NewServeMux(),
		queries:   map[int]*routerQuery{},
		retryBase: 25 * time.Millisecond,
	}
	rt.mux.HandleFunc("POST /ingest", rt.handleIngest)
	rt.mux.HandleFunc("POST /queries", rt.handleRegister)
	rt.mux.HandleFunc("GET /queries", rt.handleList)
	rt.mux.HandleFunc("DELETE /queries/{id}", rt.handleRetire)
	rt.mux.HandleFunc("GET /queries/{id}/read", rt.handleRead)
	rt.mux.HandleFunc("POST /edge", rt.fanoutJSON("/edge"))
	rt.mux.HandleFunc("DELETE /edge", rt.fanoutQuery("/edge"))
	rt.mux.HandleFunc("POST /node", rt.fanoutJSON("/node"))
	rt.mux.HandleFunc("DELETE /node", rt.fanoutQuery("/node"))
	rt.mux.HandleFunc("POST /expire", rt.fanoutJSON("/expire"))
	rt.mux.HandleFunc("GET /stats", rt.handleStats)
	return rt
}

func (rt *router) ServeHTTP(w http.ResponseWriter, r *http.Request) { rt.mux.ServeHTTP(w, r) }

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// post sends one JSON request to a shard and decodes the response into out
// (skipped when out is nil). Non-2xx responses become errors carrying the
// shard's status and body.
func (rt *router) do(method, shardURL, path string, body []byte, out any) (int, error) {
	req, err := http.NewRequest(method, shardURL+path, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return resp.StatusCode, fmt.Errorf("%s%s: %s: %s", shardURL, path, resp.Status, strings.TrimSpace(string(msg)))
	}
	if out != nil {
		// 204s and other empty successes are legal (e.g. POST /edge):
		// only decode when the shard actually sent a body.
		payload, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		if err != nil {
			return resp.StatusCode, fmt.Errorf("%s%s: read: %v", shardURL, path, err)
		}
		if len(bytes.TrimSpace(payload)) > 0 {
			if err := json.Unmarshal(payload, out); err != nil {
				return resp.StatusCode, fmt.Errorf("%s%s: decode: %v", shardURL, path, err)
			}
		}
	}
	return resp.StatusCode, nil
}

// doRetry is rt.do for IDEMPOTENT requests only (GETs, POST /expire): on a
// transient failure — transport error (code 0) or a 5xx — it retries with
// capped exponential backoff (retryBase·2^k, capped at 8·retryBase, up to
// retryAttempts tries). 4xx responses are the shard's verdict, not a
// transient, and return immediately. Non-idempotent traffic (/ingest,
// structural mutations, query registration) must NEVER come through here:
// a retry after an applied-but-unacked request would double-apply on one
// replica and desynchronize the fleet.
func (rt *router) doRetry(method, shardURL, path string, body []byte, out any) (int, error) {
	var (
		code int
		err  error
	)
	delay := rt.retryBase
	for attempt := 0; attempt < retryAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(delay)
			if delay *= 2; delay > 8*rt.retryBase {
				delay = 8 * rt.retryBase
			}
		}
		code, err = rt.do(method, shardURL, path, body, out)
		if err == nil {
			if attempt > 0 {
				rt.qmu.Lock()
				rt.retries++
				rt.qmu.Unlock()
			}
			return code, nil
		}
		if code >= 400 && code < 500 {
			return code, err // definitive rejection; retrying cannot help
		}
	}
	return code, err
}

// shardErr is one shard's fan-out failure: the shard index, the HTTP status
// it answered with (0 when the request never completed), and the error.
type shardErr struct {
	shard int
	code  int
	err   error
}

// fanout runs fn for every shard concurrently and waits for all of them.
// Per-shard ordering is preserved because every caller holds rt.mu across
// the whole fan-out: concurrent router requests never interleave their
// fan-outs, only the shards WITHIN one fan-out run in parallel — so each
// shard still observes the structural stream in router order, at the
// latency of the slowest shard instead of the sum of all shards. The
// lowest-indexed failure is returned, keeping error attribution
// deterministic under concurrency.
func (rt *router) fanout(fn func(i int, base string) (int, error)) *shardErr {
	errs := make([]*shardErr, len(rt.shards))
	var wg sync.WaitGroup
	for i, base := range rt.shards {
		wg.Add(1)
		go func(i int, base string) {
			defer wg.Done()
			if code, err := fn(i, base); err != nil {
				errs[i] = &shardErr{shard: i, code: code, err: err}
			}
		}(i, base)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// status maps a shard failure onto the router's response status: client
// errors and Gone relay as-is, everything else (including transport
// failures, code 0) is a bad gateway.
func (e *shardErr) status() int {
	if e.code >= 400 && e.code < 500 || e.code == http.StatusGone {
		return e.code
	}
	return http.StatusBadGateway
}

// handleRegister registers the query on every shard (same body, so the
// shards compile identical overlay families) and records the id mapping.
// A partial failure retires the already-registered copies: shard query
// sets must stay identical or reads would merge mismatched views.
func (rt *router) handleRegister(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	var spec struct {
		Aggregate string `json:"aggregate"`
	}
	if err := json.Unmarshal(body, &spec); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	name := spec.Aggregate
	if name == "" {
		name = "sum"
	}
	isTopo := false
	if _, err := agg.Parse(name); err != nil {
		if !topo.IsTopo(name) {
			httpError(w, http.StatusUnprocessableEntity, "%v", err)
			return
		}
		isTopo = true
	}
	rt.qmu.Lock()
	defer rt.qmu.Unlock()
	ids := make([]int, 0, len(rt.shards))
	for i, base := range rt.shards {
		var qr struct {
			ID int `json:"id"`
		}
		code, err := rt.do(http.MethodPost, base, "/queries", body, &qr)
		if err != nil {
			for j := range ids {
				_, _ = rt.do(http.MethodDelete, rt.shards[j], "/queries/"+strconv.Itoa(ids[j]), nil, nil)
			}
			status := http.StatusBadGateway
			if code >= 400 && code < 500 {
				status = code // the shard rejected the spec; relay its verdict
			}
			httpError(w, status, "shard %d: %v", i, err)
			return
		}
		ids = append(ids, qr.ID)
	}
	rq := &routerQuery{ID: rt.nextID, Aggregate: name, Topo: isTopo, ShardIDs: ids}
	rt.nextID++
	rt.queries[rq.ID] = rq
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	_ = json.NewEncoder(w).Encode(rq)
}

func (rt *router) handleList(w http.ResponseWriter, r *http.Request) {
	rt.qmu.Lock()
	defer rt.qmu.Unlock()
	out := make([]*routerQuery, 0, len(rt.queries))
	for id := 0; id < rt.nextID; id++ {
		if rq, ok := rt.queries[id]; ok {
			out = append(out, rq)
		}
	}
	writeJSON(w, out)
}

func (rt *router) queryFor(w http.ResponseWriter, r *http.Request) *routerQuery {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad query id %q", r.PathValue("id"))
		return nil
	}
	rt.qmu.Lock()
	defer rt.qmu.Unlock()
	rq := rt.queries[id]
	if rq == nil {
		httpError(w, http.StatusNotFound, "no query %d", id)
		return nil
	}
	return rq
}

func (rt *router) handleRetire(w http.ResponseWriter, r *http.Request) {
	rq := rt.queryFor(w, r)
	if rq == nil {
		return
	}
	for i, base := range rt.shards {
		if _, err := rt.do(http.MethodDelete, base, "/queries/"+strconv.Itoa(rq.ShardIDs[i]), nil, nil); err != nil {
			httpError(w, http.StatusBadGateway, "shard %d: %v", i, err)
			return
		}
	}
	rt.qmu.Lock()
	delete(rt.queries, rq.ID)
	rt.qmu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

// handleRead is the cross-shard read: fetch every shard's un-finalized
// PAO for the node, merge, finalize once. Shards are structural replicas,
// so they agree on whether the node exists; the first shard's 404/410
// verdict is relayed as the fleet's.
func (rt *router) handleRead(w http.ResponseWriter, r *http.Request) {
	rq := rt.queryFor(w, r)
	if rq == nil {
		return
	}
	node := r.URL.Query().Get("node")
	if node == "" {
		httpError(w, http.StatusBadRequest, "missing %q parameter", "node")
		return
	}
	if rq.Topo {
		rt.handleTopoRead(w, rq, node)
		return
	}
	a, err := agg.Parse(rq.Aggregate)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	wires := make([]agg.WirePAO, 0, len(rt.shards))
	for i, base := range rt.shards {
		var pr struct {
			PAO agg.WirePAO `json:"pao"`
		}
		path := "/queries/" + strconv.Itoa(rq.ShardIDs[i]) + "/pao?node=" + node
		code, err := rt.doRetry(http.MethodGet, base, path, nil, &pr)
		if err != nil {
			status := http.StatusBadGateway
			if code >= 400 && code < 500 || code == http.StatusGone {
				status = code
			}
			httpError(w, status, "shard %d: %v", i, err)
			return
		}
		wires = append(wires, pr.PAO)
	}
	res, err := agg.MergeWires(a, wires)
	if err != nil {
		httpError(w, http.StatusBadGateway, "merge: %v", err)
		return
	}
	rt.qmu.Lock()
	rt.reads++
	rt.qmu.Unlock()
	nodeID, _ := strconv.Atoi(node)
	writeJSON(w, map[string]any{
		"node": nodeID, "valid": res.Valid, "scalar": res.Scalar, "list": res.List,
	})
}

// handleTopoRead answers a topology-valued read: structure is replicated,
// so any single shard's GET /read is already the exact fleet-wide value.
// The router prefers shard 0 and falls through to the next shard on a
// transient failure (each with its own retry budget); a 4xx/410 is a
// verdict every replica shares and is relayed immediately.
func (rt *router) handleTopoRead(w http.ResponseWriter, rq *routerQuery, node string) {
	var lastErr *shardErr
	for i, base := range rt.shards {
		var out json.RawMessage
		path := "/queries/" + strconv.Itoa(rq.ShardIDs[i]) + "/read?node=" + node
		code, err := rt.doRetry(http.MethodGet, base, path, nil, &out)
		if err == nil {
			rt.qmu.Lock()
			rt.reads++
			rt.qmu.Unlock()
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write(out)
			return
		}
		lastErr = &shardErr{shard: i, code: code, err: err}
		if code >= 400 && code < 500 || code == http.StatusGone {
			httpError(w, code, "shard %d: %v", i, err)
			return
		}
	}
	httpError(w, http.StatusBadGateway, "all shards failed; last: shard %d: %v", lastErr.shard, lastErr.err)
}

// encodeEvent renders one routed event back to canonical NDJSON. The
// router re-encodes rather than forwarding raw lines so its timestamp
// stamping is explicit on the wire: every shard sees the same ts for a
// fanned-out structural event, whatever its local stream max says.
func encodeEvent(ev graph.Event) []byte {
	b, _ := json.Marshal(map[string]any{
		"kind": ev.Kind.String(), "node": ev.Node, "peer": ev.Peer,
		"value": ev.Value, "ts": ev.TS,
	})
	return b
}

// handleIngest routes one NDJSON stream: content to owners, structure to
// everyone, then a synchronous per-shard flush and a fleet-wide minimum
// watermark broadcast (POST /expire) so time-based windows advance at the
// pace of the slowest shard.
func (rt *router) handleIngest(w http.ResponseWriter, r *http.Request) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	bufs := make([]bytes.Buffer, len(rt.shards))
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 64<<10), maxIngestLine)
	accepted, line := 0, 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		ev, err := server.ParseIngestLine(raw)
		if err != nil {
			httpError(w, http.StatusBadRequest, "line %d: %v", line, err)
			return
		}
		// Stamp here, not on the shards: each shard sees only a slice of
		// the stream, so its local "current maximum timestamp" lags the
		// router's and would stamp ts-less events into the past.
		if ev.TS == 0 {
			ev.TS = rt.streamTS
		} else if ev.TS > rt.streamTS {
			rt.streamTS = ev.TS
		}
		out := encodeEvent(ev)
		if ev.IsStructural() {
			for i := range bufs {
				bufs[i].Write(out)
				bufs[i].WriteByte('\n')
			}
		} else {
			i := shard.Owner(ev.Node, len(rt.shards))
			bufs[i].Write(out)
			bufs[i].WriteByte('\n')
			rt.writes++
		}
		accepted++
	}
	if err := sc.Err(); err != nil {
		httpError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	// Concurrent fan-out: every shard receives its substream in parallel
	// (rt.mu, held across the whole fan-out, is what keeps per-shard
	// ordering intact between requests), so a mixed batch costs the
	// slowest shard's apply, not the sum.
	wms := make([]*int64, len(rt.shards))
	if ferr := rt.fanout(func(i int, base string) (int, error) {
		if bufs[i].Len() == 0 {
			return 0, nil
		}
		resp, err := rt.client.Post(base+"/ingest", "application/x-ndjson", bytes.NewReader(bufs[i].Bytes()))
		if err != nil {
			return 0, err
		}
		var ack struct {
			Accepted  int    `json:"accepted"`
			Watermark *int64 `json:"watermark"`
			Error     string `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&ack)
		resp.Body.Close()
		if err != nil {
			return resp.StatusCode, fmt.Errorf("decode: %v", err)
		}
		if resp.StatusCode >= 300 || ack.Error != "" {
			return resp.StatusCode, fmt.Errorf("%s %s", resp.Status, ack.Error)
		}
		wms[i] = ack.Watermark
		return resp.StatusCode, nil
	}); ferr != nil {
		httpError(w, http.StatusBadGateway, "shard %d: %v", ferr.shard, ferr.err)
		return
	}
	var minWM int64
	haveWM := false
	for _, wm := range wms {
		if wm != nil && (!haveWM || *wm < minWM) {
			minWM, haveWM = *wm, true
		}
	}
	resp := map[string]any{"accepted": accepted}
	if haveWM {
		// The fleet clock: broadcast the minimum so no shard expires
		// windows ahead of the slowest substream. Expiry only ratchets
		// forward, so POST /expire is idempotent and safe to retry.
		body, _ := json.Marshal(map[string]int64{"ts": minWM})
		if ferr := rt.fanout(func(i int, base string) (int, error) {
			return rt.doRetry(http.MethodPost, base, "/expire", body, nil)
		}); ferr != nil {
			httpError(w, http.StatusBadGateway, "shard %d: expire: %v", ferr.shard, ferr.err)
			return
		}
		resp["watermark"] = minWM
	}
	writeJSON(w, resp)
}

// fanoutJSON broadcasts a JSON POST body to every shard and relays the
// first shard's response body (replicas answer identically — e.g. POST
// /node returns the same freshly allocated id everywhere).
func (rt *router) fanoutJSON(path string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			httpError(w, http.StatusBadRequest, "read body: %v", err)
			return
		}
		rt.mu.Lock()
		defer rt.mu.Unlock()
		outs := make([]json.RawMessage, len(rt.shards))
		if ferr := rt.fanout(func(i int, base string) (int, error) {
			return rt.do(http.MethodPost, base, path, body, &outs[i])
		}); ferr != nil {
			httpError(w, ferr.status(), "shard %d: %v", ferr.shard, ferr.err)
			return
		}
		first := outs[0]
		if len(first) > 0 {
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write(first)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	}
}

// fanoutQuery broadcasts a query-string request (DELETE /edge?from=&to=,
// DELETE /node?node=) to every shard.
func (rt *router) fanoutQuery(path string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		rt.mu.Lock()
		defer rt.mu.Unlock()
		if ferr := rt.fanout(func(i int, base string) (int, error) {
			return rt.do(r.Method, base, path+"?"+r.URL.RawQuery, nil, nil)
		}); ferr != nil {
			httpError(w, ferr.status(), "shard %d: %v", ferr.shard, ferr.err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	}
}

// shardHealth is one shard's probe result in GET /stats: Healthy reports
// whether GET /healthz answered 200 (after the idempotent retry budget),
// Error carries the final failure when it did not.
type shardHealth struct {
	Shard   int    `json:"shard"`
	Healthy bool   `json:"healthy"`
	Error   string `json:"error,omitempty"`
}

// probeHealth checks every shard's /healthz concurrently, each probe with
// its own retry budget, so a blip doesn't mark a shard down.
func (rt *router) probeHealth() []shardHealth {
	out := make([]shardHealth, len(rt.shards))
	_ = rt.fanout(func(i int, base string) (int, error) {
		out[i] = shardHealth{Shard: i, Healthy: true}
		if _, err := rt.doRetry(http.MethodGet, base, "/healthz", nil, nil); err != nil {
			out[i] = shardHealth{Shard: i, Healthy: false, Error: err.Error()}
		}
		return 0, nil
	})
	return out
}

// handleStats reports the router's own counters, every shard's /healthz
// verdict, and every shard's full /stats body, keyed by shard index.
func (rt *router) handleStats(w http.ResponseWriter, r *http.Request) {
	rt.mu.Lock()
	writes, streamTS := rt.writes, rt.streamTS
	rt.mu.Unlock()
	rt.qmu.Lock()
	reads, queries, retries := rt.reads, len(rt.queries), rt.retries
	rt.qmu.Unlock()
	shardStats := make([]json.RawMessage, len(rt.shards))
	_ = rt.fanout(func(i int, base string) (int, error) {
		if _, err := rt.doRetry(http.MethodGet, base, "/stats", nil, &shardStats[i]); err != nil {
			shardStats[i], _ = json.Marshal(map[string]string{"error": err.Error()})
		}
		return 0, nil
	})
	writeJSON(w, map[string]any{
		"shards":          len(rt.shards),
		"contentRouted":   writes,
		"readsMerged":     reads,
		"queries":         queries,
		"retriedRequests": retries,
		"streamTimestamp": streamTS,
		"shardHealth":     rt.probeHealth(),
		"shardStats":      shardStats,
	})
}

func main() {
	var (
		listen = flag.String("listen", ":8090", "listen address")
		shards = flag.String("shards", "", "comma-separated shard base URLs (e.g. http://127.0.0.1:8081,http://127.0.0.1:8082), all serving the same graph with -ingest-manual-expire")
	)
	flag.Parse()
	var bases []string
	for _, s := range strings.Split(*shards, ",") {
		if s = strings.TrimSpace(strings.TrimSuffix(s, "/")); s != "" {
			bases = append(bases, s)
		}
	}
	if len(bases) == 0 {
		log.Fatal("eagr-router: -shards is required")
	}
	rt := newRouter(bases)
	log.Printf("routing %d shards on %s", len(bases), *listen)
	log.Fatal(http.ListenAndServe(*listen, rt))
}
