package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	eagr "repro"
	"repro/internal/graph"
	"repro/internal/server"
)

// fleetGraph builds one instance of the fixture graph every shard (and the
// oracle) starts from: 0-1, 1-2, 2-3 as directed edges.
func fleetGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g := eagr.NewGraph(6)
	for _, e := range [][2]eagr.NodeID{{0, 1}, {1, 2}, {2, 3}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// newFleet spins up n in-process shard servers over identical graphs and a
// router fronting them (retry backoff shrunk for test speed). mid, when
// non-nil, wraps each shard handler — the hook fault-injection tests use.
func newFleet(t *testing.T, n int, mid func(shard int, h http.Handler) http.Handler) (*router, *httptest.Server) {
	t.Helper()
	bases := make([]string, n)
	for i := 0; i < n; i++ {
		sess, err := eagr.Open(fleetGraph(t))
		if err != nil {
			t.Fatal(err)
		}
		srv := server.New(sess)
		var h http.Handler = srv
		if mid != nil {
			h = mid(i, srv)
		}
		ts := httptest.NewServer(h)
		t.Cleanup(func() { ts.Close(); srv.Close() })
		bases[i] = ts.URL
	}
	rt := newRouter(bases)
	rt.retryBase = time.Millisecond
	rts := httptest.NewServer(rt)
	t.Cleanup(rts.Close)
	return rt, rts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeInto[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// TestRouterTopoRegisterAndRead: a topology-valued query registers across
// the fleet, structural fan-out keeps the replicas aligned, and reads
// proxy one shard's exact value (no PAO merge).
func TestRouterTopoRegisterAndRead(t *testing.T) {
	_, rts := newFleet(t, 2, nil)

	resp := postJSON(t, rts.URL+"/queries", map[string]any{"aggregate": "triangles"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register status = %d", resp.StatusCode)
	}
	reg := decodeInto[routerQuery](t, resp)
	if !reg.Topo || len(reg.ShardIDs) != 2 {
		t.Fatalf("registered query = %+v, want topo on 2 shards", reg)
	}

	// Close the 0-1-2 triangle through the router's structural fan-out.
	resp = postJSON(t, rts.URL+"/edge", map[string]any{"from": 2, "to": 0})
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("edge status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	read, err := http.Get(fmt.Sprintf("%s/queries/%d/read?node=1", rts.URL, reg.ID))
	if err != nil {
		t.Fatal(err)
	}
	if read.StatusCode != http.StatusOK {
		t.Fatalf("read status = %d", read.StatusCode)
	}
	got := decodeInto[map[string]any](t, read)
	if got["scalar"].(float64) != 1 {
		t.Fatalf("triangles(1) via router = %v, want 1", got)
	}

	// Unknown aggregates still 422 without touching any shard.
	resp = postJSON(t, rts.URL+"/queries", map[string]any{"aggregate": "nope"})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bogus aggregate status = %d", resp.StatusCode)
	}
	resp.Body.Close()
}

// flakyShard fails the first `fails` requests matching match with 502,
// then forwards to the real shard — a transient brown-out.
type flakyShard struct {
	next  http.Handler
	match func(*http.Request) bool
	fails int32
	seen  int32
}

func (f *flakyShard) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.match(r) {
		atomic.AddInt32(&f.seen, 1)
		if atomic.AddInt32(&f.fails, -1) >= 0 {
			http.Error(w, "injected brown-out", http.StatusBadGateway)
			return
		}
	}
	f.next.ServeHTTP(w, r)
}

// TestRouterRetriesIdempotentReads: a shard browning out on reads must be
// absorbed by the retry budget; the client sees one clean 200 and /stats
// counts the retry.
func TestRouterRetriesIdempotentReads(t *testing.T) {
	var flaky *flakyShard
	_, rts := newFleet(t, 2, func(i int, h http.Handler) http.Handler {
		if i != 0 {
			return h
		}
		flaky = &flakyShard{next: h, fails: 2, match: func(r *http.Request) bool {
			return r.Method == http.MethodGet && strings.HasSuffix(r.URL.Path, "/read")
		}}
		return flaky
	})
	reg := decodeInto[routerQuery](t, postJSON(t, rts.URL+"/queries", map[string]any{"aggregate": "density"}))

	read, err := http.Get(fmt.Sprintf("%s/queries/%d/read?node=1", rts.URL, reg.ID))
	if err != nil {
		t.Fatal(err)
	}
	if read.StatusCode != http.StatusOK {
		t.Fatalf("read through brown-out status = %d, want 200", read.StatusCode)
	}
	read.Body.Close()
	if got := atomic.LoadInt32(&flaky.seen); got != 3 {
		t.Fatalf("shard saw %d read attempts, want 3 (2 failures + 1 success)", got)
	}
	st := decodeInto[map[string]any](t, mustGetOK(t, rts.URL+"/stats"))
	if st["retriedRequests"].(float64) < 1 {
		t.Fatalf("stats retriedRequests = %v, want >= 1", st["retriedRequests"])
	}
}

// TestRouterNeverRetriesIngest: non-idempotent traffic gets exactly one
// attempt — a failure surfaces instead of risking a double-apply.
func TestRouterNeverRetriesIngest(t *testing.T) {
	var flaky *flakyShard
	_, rts := newFleet(t, 2, func(i int, h http.Handler) http.Handler {
		if i != 0 {
			return h
		}
		flaky = &flakyShard{next: h, fails: 1, match: func(r *http.Request) bool {
			return r.URL.Path == "/ingest"
		}}
		return flaky
	})
	// Structural, so the substream fans out to BOTH shards — including the
	// flaky one — regardless of content ownership hashing.
	body := strings.NewReader(`{"kind":"edge-add","from":3,"to":1,"ts":1}` + "\n")
	resp, err := http.Post(rts.URL+"/ingest", "application/x-ndjson", body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("ingest through failing shard status = %d, want 502", resp.StatusCode)
	}
	if got := atomic.LoadInt32(&flaky.seen); got != 1 {
		t.Fatalf("shard saw %d ingest attempts, want exactly 1 (no retry)", got)
	}
}

// TestRouterHealthProbes: /stats surfaces per-shard /healthz verdicts, and
// a dead shard reports unhealthy without failing the stats request.
func TestRouterHealthProbes(t *testing.T) {
	rt, rts := newFleet(t, 2, nil)

	st := decodeInto[map[string]any](t, mustGetOK(t, rts.URL+"/stats"))
	hs := st["shardHealth"].([]any)
	if len(hs) != 2 {
		t.Fatalf("shardHealth = %v, want 2 entries", hs)
	}
	for i, h := range hs {
		if h.(map[string]any)["healthy"] != true {
			t.Fatalf("shard %d reported unhealthy: %v", i, h)
		}
	}

	// Point shard 1 at a dead address: probes must fail closed, not hang
	// or kill /stats.
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	rt.shards[1] = dead.URL
	st = decodeInto[map[string]any](t, mustGetOK(t, rts.URL+"/stats"))
	hs = st["shardHealth"].([]any)
	h1 := hs[1].(map[string]any)
	if h1["healthy"] != false || h1["error"] == "" {
		t.Fatalf("dead shard health = %v, want unhealthy with error", h1)
	}
}

// TestRouterTopoReadFailsOver: when the preferred shard is down entirely,
// a topo read falls through to the next replica and still answers.
func TestRouterTopoReadFailsOver(t *testing.T) {
	rt, rts := newFleet(t, 2, nil)
	reg := decodeInto[routerQuery](t, postJSON(t, rts.URL+"/queries", map[string]any{"aggregate": "wedges"}))

	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	rt.shards[0] = dead.URL

	read, err := http.Get(fmt.Sprintf("%s/queries/%d/read?node=1", rts.URL, reg.ID))
	if err != nil {
		t.Fatal(err)
	}
	if read.StatusCode != http.StatusOK {
		t.Fatalf("failover read status = %d, want 200", read.StatusCode)
	}
	// Ego 1's neighborhood {0,2} gives one wedge.
	got := decodeInto[map[string]any](t, read)
	if got["scalar"].(float64) != 1 {
		t.Fatalf("wedges(1) after failover = %v, want 1", got)
	}
}

func mustGetOK(t *testing.T, u string) *http.Response {
	t.Helper()
	resp, err := http.Get(u)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s status = %d", u, resp.StatusCode)
	}
	return resp
}
