// Command eagr-overlay builds an aggregation overlay for a synthetic graph
// and reports its structure: sharing index, node/edge counts, depth
// distribution, and the effect of the dataflow decisions.
//
// Usage:
//
//	eagr-overlay -graph social -nodes 5000 -alg vnma
//	eagr-overlay -graph web -alg iob -iterations 5 -ratio 2
//	eagr-overlay -graph social -nodes 2000 -merge workload.json
//
// With -merge, the named file holds a JSON array of query specs (the wire
// shape of the HTTP POST /queries body: {"aggregate","windowTuples",
// "windowTime","hops","continuous","mode"}); the command registers every
// query on one multi-query session and prints how they group into merge
// families — which queries share one merged overlay — plus the sharing
// statistics of each family versus compiling the queries separately.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	eagr "repro"
	"repro/internal/bipartite"
	"repro/internal/construct"
	"repro/internal/dataflow"
	"repro/internal/graph"
	"repro/internal/overlay"
	"repro/internal/workload"
)

func main() {
	var (
		kind  = flag.String("graph", "social", "graph family: social | web")
		nodes = flag.Int("nodes", 5000, "number of nodes")
		deg   = flag.Int("degree", 10, "average degree (social) / template size (web)")
		alg   = flag.String("alg", "vnma", "overlay algorithm: vnm | vnma | vnmn | vnmd | iob | baseline")
		iters = flag.Int("iterations", 10, "construction iterations")
		hops  = flag.Int("hops", 1, "neighborhood hops")
		ratio = flag.Float64("ratio", 1, "write:read ratio for dataflow decisions")
		seed  = flag.Int64("seed", 1, "random seed")
		save  = flag.String("save", "", "write the compiled overlay (with decisions) to this file")
		load  = flag.String("load", "", "load a previously saved overlay instead of constructing")
		merge = flag.String("merge", "", "register the query specs in this JSON file on one session and print merge-family grouping + sharing stats")
	)
	flag.Parse()

	var g *graph.Graph
	switch *kind {
	case "social":
		g = workload.SocialGraph(*nodes, *deg, *seed)
	case "web":
		g = workload.WebGraph(*nodes, 4**deg, *deg, *seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown graph family %q\n", *kind)
		os.Exit(2)
	}
	fmt.Printf("graph: %s, %d nodes, %d edges\n", *kind, g.NumNodes(), g.NumEdges())

	if *merge != "" {
		if err := runMerge(g, *merge, *alg, *iters); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	var n graph.Neighborhood = graph.InNeighbors{}
	if *hops > 1 {
		n = graph.KHopIn{K: *hops}
	}
	ag := bipartite.Build(g, n, graph.AllNodes)
	fmt.Printf("AG: %d readers, %d writers, %d edges\n",
		ag.NumReaders(), ag.NumWriters(), ag.NumEdges())

	start := time.Now()
	var ov *overlay.Overlay
	switch {
	case *load != "":
		f, err := os.Open(*load)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		ov, err = overlay.Load(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("loaded overlay from %s in %.2fs\n", *load, time.Since(start).Seconds())
	case *alg == "baseline":
		ov = construct.Baseline(ag)
		fmt.Printf("construction took %.2fs\n", time.Since(start).Seconds())
	default:
		res, err := construct.Build(*alg, ag, construct.Config{Iterations: *iters})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		ov = res.Overlay
		fmt.Printf("SI per iteration: ")
		for _, si := range res.SharingIndexHistory {
			fmt.Printf("%.1f%% ", si*100)
		}
		fmt.Println()
		fmt.Printf("construction took %.2fs\n", time.Since(start).Seconds())
	}

	st := ov.ComputeStats()
	fmt.Printf("overlay: %d writers, %d readers, %d partial aggregators\n",
		st.Writers, st.Readers, st.Partials)
	fmt.Printf("edges: %d (%d negative) vs %d in AG -> sharing index %.1f%%\n",
		st.Edges, st.NegEdges, st.AGEdges, st.SharingIndex*100)
	fmt.Printf("depth: avg %.2f, max %d\n", st.AvgDepth, st.MaxDepth)

	wl := workload.ZipfWorkload(g.MaxID(), 1.0, 1e6, *ratio, *seed)
	f, err := dataflow.ComputeFreqs(ov, wl, 1)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ps, err := dataflow.Decide(ov, f, dataflow.ConstLinear{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	push, pull := 0, 0
	ov.ForEachNode(func(_ overlay.NodeRef, nd *overlay.Node) {
		if nd.Dec == overlay.Push {
			push++
		} else {
			pull++
		}
	})
	fmt.Printf("dataflow decisions (w:r %g): %d push, %d pull\n", *ratio, push, pull)
	fmt.Printf("pruning: %d -> %d nodes (%.1f%%), %d components, largest %d\n",
		ps.NodesBefore, ps.NodesAfter,
		100*float64(ps.NodesAfter)/float64(max(ps.NodesBefore, 1)),
		ps.Components, ps.LargestComponent)

	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := ov.Save(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("saved compiled overlay to %s\n", *save)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// mergeSpec is one query of a -merge workload file (the wire shape of the
// HTTP POST /queries body).
type mergeSpec struct {
	Aggregate    string `json:"aggregate"`
	WindowTuples int    `json:"windowTuples"`
	WindowTime   int64  `json:"windowTime"`
	Hops         int    `json:"hops"`
	Continuous   bool   `json:"continuous"`
	Mode         string `json:"mode"`
}

// runMerge registers every spec on one session and reports the merge-family
// grouping: which queries compiled into one merged overlay, each family's
// overlay statistics, and the edge/partial savings versus compiling every
// query separately.
func runMerge(g *graph.Graph, path, alg string, iters int) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var specs []mergeSpec
	if err := json.Unmarshal(raw, &specs); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	if len(specs) == 0 {
		return fmt.Errorf("%s: no query specs", path)
	}
	sess, err := eagr.Open(g, eagr.Options{Algorithm: alg, Iterations: iters})
	if err != nil {
		return err
	}
	queries := make([]*eagr.Query, 0, len(specs))
	start := time.Now()
	for i, sp := range specs {
		q, err := sess.Register(eagr.QuerySpec{
			Aggregate:    sp.Aggregate,
			WindowTuples: sp.WindowTuples,
			WindowTime:   sp.WindowTime,
			Hops:         sp.Hops,
			Continuous:   sp.Continuous,
		}, eagr.Options{Algorithm: alg, Iterations: iters, Mode: sp.Mode})
		if err != nil {
			return fmt.Errorf("query %d (%+v): %w", i, sp, err)
		}
		queries = append(queries, q)
	}
	fmt.Printf("registered %d queries in %.2fs\n\n", len(specs), time.Since(start).Seconds())

	// Group handles by their underlying compiled system (= merge family).
	famOf := map[*eagr.Query]int{}
	var famQueries [][]*eagr.Query
	seen := map[any]int{}
	for _, q := range queries {
		sys := q.Internal()
		id, ok := seen[sys]
		if !ok {
			id = len(famQueries)
			seen[sys] = id
			famQueries = append(famQueries, nil)
		}
		famOf[q] = id
		famQueries[id] = append(famQueries[id], q)
	}
	fmt.Printf("%-4s %-10s %-8s %-6s %-6s %-7s %-7s %s\n",
		"qid", "aggregate", "window", "hops", "cont", "family", "shared", "ownReaders")
	for i, q := range queries {
		sp := specs[i]
		win := fmt.Sprintf("c=%d", max(sp.WindowTuples, 1))
		if sp.WindowTime > 0 {
			win = fmt.Sprintf("t=%d", sp.WindowTime)
		}
		shared, _, own := q.Sharing()
		fmt.Printf("%-4d %-10s %-8s %-6d %-6t F%-6d %-7d %d\n",
			q.ID(), sp.Aggregate, win, max(sp.Hops, 1), sp.Continuous,
			famOf[q], shared, own)
	}

	fmt.Printf("\nmerge families: %d (from %d queries)\n", len(famQueries), len(queries))
	totalEdges := 0
	for id, members := range famQueries {
		st := members[0].Stats()
		fmt.Printf("  F%d: %d queries, %d writers, %d readers, %d partials, %d edges (SI %.1f%%), depth %.2f\n",
			id, len(members), st.Writers, st.Readers, st.Partials,
			st.Edges, st.SharingIndex*100, st.AvgDepth)
		totalEdges += st.Edges
	}

	sessSt := sess.Stats()
	fmt.Printf("\nsession: %d groups, %d merged families hosting %d queries\n",
		sessSt.Groups, sessSt.MergedFamilies, sessSt.MergedQueries)
	fmt.Printf("total overlay edges across families: %d\n", totalEdges)

	// Versus-distinct estimate: compile each spec alone and sum its edges.
	distinctEdges, distinctPartials := 0, 0
	for i, sp := range specs {
		solo, err := eagr.Open(g, eagr.Options{Algorithm: alg, Iterations: iters})
		if err != nil {
			return err
		}
		q, err := solo.Register(eagr.QuerySpec{
			Aggregate:    sp.Aggregate,
			WindowTuples: sp.WindowTuples,
			WindowTime:   sp.WindowTime,
			Hops:         sp.Hops,
			Continuous:   sp.Continuous,
		}, eagr.Options{Algorithm: alg, Iterations: iters, Mode: sp.Mode})
		if err != nil {
			return fmt.Errorf("solo query %d: %w", i, err)
		}
		st := q.Stats()
		distinctEdges += st.Edges
		distinctPartials += st.Partials
	}
	famPartials := 0
	for _, members := range famQueries {
		famPartials += members[0].Stats().Partials
	}
	fmt.Printf("distinct compilation would cost: %d edges, %d partials\n", distinctEdges, distinctPartials)
	if distinctEdges > 0 {
		fmt.Printf("merged saving: %.1f%% edges, %.1f%% partials\n",
			100*(1-float64(totalEdges)/float64(distinctEdges)),
			100*(1-float64(famPartials)/float64(max(distinctPartials, 1))))
	}
	return nil
}
