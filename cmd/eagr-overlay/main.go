// Command eagr-overlay builds an aggregation overlay for a synthetic graph
// and reports its structure: sharing index, node/edge counts, depth
// distribution, and the effect of the dataflow decisions.
//
// Usage:
//
//	eagr-overlay -graph social -nodes 5000 -alg vnma
//	eagr-overlay -graph web -alg iob -iterations 5 -ratio 2
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bipartite"
	"repro/internal/construct"
	"repro/internal/dataflow"
	"repro/internal/graph"
	"repro/internal/overlay"
	"repro/internal/workload"
)

func main() {
	var (
		kind  = flag.String("graph", "social", "graph family: social | web")
		nodes = flag.Int("nodes", 5000, "number of nodes")
		deg   = flag.Int("degree", 10, "average degree (social) / template size (web)")
		alg   = flag.String("alg", "vnma", "overlay algorithm: vnm | vnma | vnmn | vnmd | iob | baseline")
		iters = flag.Int("iterations", 10, "construction iterations")
		hops  = flag.Int("hops", 1, "neighborhood hops")
		ratio = flag.Float64("ratio", 1, "write:read ratio for dataflow decisions")
		seed  = flag.Int64("seed", 1, "random seed")
		save  = flag.String("save", "", "write the compiled overlay (with decisions) to this file")
		load  = flag.String("load", "", "load a previously saved overlay instead of constructing")
	)
	flag.Parse()

	var g *graph.Graph
	switch *kind {
	case "social":
		g = workload.SocialGraph(*nodes, *deg, *seed)
	case "web":
		g = workload.WebGraph(*nodes, 4**deg, *deg, *seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown graph family %q\n", *kind)
		os.Exit(2)
	}
	fmt.Printf("graph: %s, %d nodes, %d edges\n", *kind, g.NumNodes(), g.NumEdges())

	var n graph.Neighborhood = graph.InNeighbors{}
	if *hops > 1 {
		n = graph.KHopIn{K: *hops}
	}
	ag := bipartite.Build(g, n, graph.AllNodes)
	fmt.Printf("AG: %d readers, %d writers, %d edges\n",
		ag.NumReaders(), ag.NumWriters(), ag.NumEdges())

	start := time.Now()
	var ov *overlay.Overlay
	switch {
	case *load != "":
		f, err := os.Open(*load)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		ov, err = overlay.Load(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("loaded overlay from %s in %.2fs\n", *load, time.Since(start).Seconds())
	case *alg == "baseline":
		ov = construct.Baseline(ag)
		fmt.Printf("construction took %.2fs\n", time.Since(start).Seconds())
	default:
		res, err := construct.Build(*alg, ag, construct.Config{Iterations: *iters})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		ov = res.Overlay
		fmt.Printf("SI per iteration: ")
		for _, si := range res.SharingIndexHistory {
			fmt.Printf("%.1f%% ", si*100)
		}
		fmt.Println()
		fmt.Printf("construction took %.2fs\n", time.Since(start).Seconds())
	}

	st := ov.ComputeStats()
	fmt.Printf("overlay: %d writers, %d readers, %d partial aggregators\n",
		st.Writers, st.Readers, st.Partials)
	fmt.Printf("edges: %d (%d negative) vs %d in AG -> sharing index %.1f%%\n",
		st.Edges, st.NegEdges, st.AGEdges, st.SharingIndex*100)
	fmt.Printf("depth: avg %.2f, max %d\n", st.AvgDepth, st.MaxDepth)

	wl := workload.ZipfWorkload(g.MaxID(), 1.0, 1e6, *ratio, *seed)
	f, err := dataflow.ComputeFreqs(ov, wl, 1)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ps, err := dataflow.Decide(ov, f, dataflow.ConstLinear{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	push, pull := 0, 0
	ov.ForEachNode(func(_ overlay.NodeRef, nd *overlay.Node) {
		if nd.Dec == overlay.Push {
			push++
		} else {
			pull++
		}
	})
	fmt.Printf("dataflow decisions (w:r %g): %d push, %d pull\n", *ratio, push, pull)
	fmt.Printf("pruning: %d -> %d nodes (%.1f%%), %d components, largest %d\n",
		ps.NodesBefore, ps.NodesAfter,
		100*float64(ps.NodesAfter)/float64(max(ps.NodesBefore, 1)),
		ps.Components, ps.LargestComponent)

	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := ov.Save(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("saved compiled overlay to %s\n", *save)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
