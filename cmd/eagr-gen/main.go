// Command eagr-gen generates the synthetic evaluation graphs (DESIGN.md §3)
// and writes them as an edge list, one "src dst" pair per line — a
// conventional interchange format for graph tools.
//
// Usage:
//
//	eagr-gen -kind social -nodes 10000 > social.el
//	eagr-gen -kind web -nodes 50000 -out web.el
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/graph"
	"repro/internal/workload"
)

func main() {
	var (
		kind  = flag.String("kind", "social", "graph family: social | web")
		nodes = flag.Int("nodes", 10000, "number of nodes")
		deg   = flag.Int("degree", 10, "average degree (social) / template size (web)")
		seed  = flag.Int64("seed", 1, "random seed")
		out   = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	var g *graph.Graph
	switch *kind {
	case "social":
		g = workload.SocialGraph(*nodes, *deg, *seed)
	case "web":
		g = workload.WebGraph(*nodes, 4**deg, *deg, *seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown graph family %q\n", *kind)
		os.Exit(2)
	}

	w := bufio.NewWriter(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	defer w.Flush()

	fmt.Fprintf(w, "# %s graph: %d nodes, %d edges, seed %d\n",
		*kind, g.NumNodes(), g.NumEdges(), *seed)
	g.ForEachNode(func(u graph.NodeID) {
		for _, v := range g.Out(u) {
			fmt.Fprintf(w, "%d %d\n", u, v)
		}
	})
}
