// End-to-end crash-recovery test: a real eagr-serve process is SIGKILLed
// mid-ingest and restarted on the same -data-dir; the recovered state must
// match an in-process oracle that applied exactly the acknowledged events.
//
// Gated behind EAGR_E2E=1: it re-execs the test binary as the server
// (see TestMain), binds a TCP port, and kills processes — CI runs it,
// plain `go test ./...` skips it.
package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"

	eagr "repro"
	"repro/internal/workload"
)

// TestMain re-execs: with EAGR_SERVE_CHILD=1 the test binary IS the
// server (main() parses the remaining args as eagr-serve flags).
func TestMain(m *testing.M) {
	if os.Getenv("EAGR_SERVE_CHILD") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

const (
	e2eNodes  = 60
	e2eDegree = 4
	e2eSeed   = 7
)

type e2eServer struct {
	cmd  *exec.Cmd
	base string
}

func startServer(t *testing.T, dir, addr string) *e2eServer {
	t.Helper()
	cmd := exec.Command(os.Args[0],
		"-listen", addr,
		"-graph", "social",
		"-nodes", fmt.Sprint(e2eNodes),
		"-degree", fmt.Sprint(e2eDegree),
		"-seed", fmt.Sprint(e2eSeed),
		"-aggregate", "sum",
		"-window", "4",
		"-data-dir", dir,
		"-fsync", "per-batch",
		"-checkpoint-interval", "100ms",
	)
	cmd.Env = append(os.Environ(), "EAGR_SERVE_CHILD=1")
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	s := &e2eServer{cmd: cmd, base: "http://" + addr}
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(s.base + "/stats")
		if err == nil {
			resp.Body.Close()
			return s
		}
		if time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			t.Fatalf("server at %s never came up: %v", addr, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func (s *e2eServer) kill(t *testing.T) {
	t.Helper()
	if err := s.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_ = s.cmd.Wait()
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func postJSON(t *testing.T, url string, body string) map[string]any {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		t.Fatalf("POST %s: status %d", url, resp.StatusCode)
	}
	var v map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil && resp.StatusCode != http.StatusNoContent {
		t.Fatal(err)
	}
	return v
}

func TestServeCrashRecoveryE2E(t *testing.T) {
	if os.Getenv("EAGR_E2E") != "1" {
		t.Skip("set EAGR_E2E=1 to run the process-level crash test")
	}
	dir := t.TempDir()
	addr := freeAddr(t)
	srv := startServer(t, dir, addr)

	// Two more standing queries next to the flag-registered tuple-window
	// sum (id 1): a time-windowed count and a 2-hop sum that merges into
	// the first query's overlay family.
	postJSON(t, srv.base+"/queries", `{"aggregate":"count","windowTime":50}`)
	postJSON(t, srv.base+"/queries", `{"aggregate":"sum","windowTuples":4,"hops":2}`)

	// Stream sync /ingest chunks; a 200 means applied AND fsynced (the
	// server runs fsync=per-batch), so every acked chunk must survive.
	var acked []eagr.Event
	ts := int64(0)
	sendChunk := func(n int) {
		var sb strings.Builder
		evs := make([]eagr.Event, 0, n)
		for i := 0; i < n; i++ {
			ts++
			node := int(ts*13) % e2eNodes
			val := ts % 97
			fmt.Fprintf(&sb, `{"node":%d,"value":%d,"ts":%d}`+"\n", node, val, ts)
			evs = append(evs, eagr.NewWrite(eagr.NodeID(node), val, ts))
		}
		resp, err := http.Post(srv.base+"/ingest", "application/x-ndjson", strings.NewReader(sb.String()))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest chunk: status %d", resp.StatusCode)
		}
		acked = append(acked, evs...)
	}
	for c := 0; c < 20; c++ {
		sendChunk(25)
	}
	t.Logf("pre-kill q1 node0: %v", getJSON(t, srv.base+"/queries/1/read?node=0"))
	// Kill without warning: no shutdown checkpoint, no clean marker.
	srv.kill(t)

	// Restart on the same directory (fresh port: the killed process's
	// socket may linger) and wait for recovery.
	srv2 := startServer(t, dir, freeAddr(t))
	defer srv2.kill(t)

	// The recovered server must report all three queries and a WAL-replay
	// (not clean-shutdown) recovery in /stats.
	stats := getJSON(t, srv2.base+"/stats")
	durSec, ok := stats["durability"].(map[string]any)
	if !ok {
		t.Fatalf("no durability section after recovery: %v", stats)
	}
	if durSec["cleanShutdown"] != false {
		t.Fatal("SIGKILL recovered as clean shutdown")
	}
	queries := getJSONList(t, srv2.base+"/queries")
	if len(queries) != 3 {
		t.Fatalf("recovered %d queries, want 3", len(queries))
	}

	// Oracle: same deterministic graph, same queries, exactly the acked
	// events, expiry at the final watermark (lateness 0 ⇒ max acked ts).
	g := workload.SocialGraph(e2eNodes, e2eDegree, e2eSeed)
	oracle, err := eagr.Open(g, eagr.Options{Iterations: 6})
	if err != nil {
		t.Fatal(err)
	}
	q1, _ := oracle.Register(eagr.QuerySpec{Aggregate: "sum", WindowTuples: 4})
	q2, _ := oracle.Register(eagr.QuerySpec{Aggregate: "count", WindowTime: 50})
	q3, _ := oracle.Register(eagr.QuerySpec{Aggregate: "sum", WindowTuples: 4, Hops: 2})
	if err := oracle.ApplyBatch(acked); err != nil {
		t.Fatal(err)
	}
	oracle.ExpireAll(ts)

	for _, oq := range []*eagr.Query{q1, q2, q3} {
		for v := 0; v < e2eNodes; v++ {
			want, werr := oq.Read(eagr.NodeID(v))
			if werr != nil {
				continue
			}
			got := getJSON(t, fmt.Sprintf("%s/queries/%d/read?node=%d", srv2.base, oq.ID(), v))
			if got["valid"] != want.Valid {
				t.Fatalf("query %d node %d: valid=%v, oracle %v", oq.ID(), v, got["valid"], want.Valid)
			}
			gotScalar := int64(0)
			if f, ok := got["scalar"].(float64); ok {
				gotScalar = int64(f)
			}
			if want.Valid && gotScalar != want.Scalar {
				t.Fatalf("query %d node %d: scalar=%d, oracle %d", oq.ID(), v, gotScalar, want.Scalar)
			}
		}
	}
}

func getJSON(t *testing.T, url string) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	var v map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func getJSONList(t *testing.T, url string) []map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}
