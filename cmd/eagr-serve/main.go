// Command eagr-serve runs an EAGr instance as an HTTP service over a
// synthetic or edge-list graph. See internal/server for the JSON API.
//
// Usage:
//
//	eagr-serve -listen :8080 -graph social -nodes 10000 -aggregate "topk(3)"
//	eagr-serve -edgelist graph.el -aggregate sum -window 10
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"

	"repro/internal/agg"
	"repro/internal/construct"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/server"
	"repro/internal/workload"
)

func main() {
	var (
		listen   = flag.String("listen", ":8080", "listen address")
		kind     = flag.String("graph", "social", "graph family: social | web")
		nodes    = flag.Int("nodes", 10000, "synthetic graph size")
		deg      = flag.Int("degree", 10, "average degree")
		edgelist = flag.String("edgelist", "", "load graph from an edge-list file instead")
		aggSpec  = flag.String("aggregate", "sum", "aggregate: sum|count|avg|max|min|distinct|topk(k)|stddev|topk~(k)|distinct~")
		window   = flag.Int("window", 1, "tuple window size per writer")
		alg      = flag.String("alg", "", "overlay algorithm (empty = auto)")
		seed     = flag.Int64("seed", 1, "random seed for synthetic graphs")
	)
	flag.Parse()

	var g *graph.Graph
	switch {
	case *edgelist != "":
		var err error
		g, err = loadEdgeList(*edgelist)
		if err != nil {
			log.Fatal(err)
		}
	case *kind == "social":
		g = workload.SocialGraph(*nodes, *deg, *seed)
	case *kind == "web":
		g = workload.WebGraph(*nodes, 4**deg, *deg, *seed)
	default:
		log.Fatalf("unknown graph family %q", *kind)
	}
	log.Printf("graph: %d nodes, %d edges", g.NumNodes(), g.NumEdges())

	a, err := agg.Parse(*aggSpec)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := core.Compile(g, core.Query{
		Aggregate: a,
		Window:    agg.NewTupleWindow(*window),
	}, core.Options{
		Algorithm: *alg,
		Construct: construct.Config{Iterations: 6},
	})
	if err != nil {
		log.Fatal(err)
	}
	st := sys.Stats()
	log.Printf("compiled: algorithm=%s sharing-index=%.1f%% partials=%d maintainable=%v",
		st.Algorithm, st.Overlay.SharingIndex*100, st.Overlay.Partials, st.Maintainable)

	log.Printf("serving on %s", *listen)
	if err := http.ListenAndServe(*listen, server.New(sys)); err != nil {
		log.Fatal(err)
	}
}

// loadEdgeList reads "src dst" pairs (one per line, '#' comments), sizing
// the graph to the largest id seen.
func loadEdgeList(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	type edge struct{ u, v int }
	var edges []edge
	maxID := -1
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		var u, v int
		if _, err := fmt.Sscan(text, &u, &v); err != nil {
			return nil, fmt.Errorf("%s:%d: %v", path, line, err)
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("%s:%d: negative node id", path, line)
		}
		edges = append(edges, edge{u, v})
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	g := graph.NewWithNodes(maxID + 1)
	for _, e := range edges {
		if err := g.AddEdge(graph.NodeID(e.u), graph.NodeID(e.v)); err != nil {
			// Tolerate duplicate edges in input files.
			continue
		}
	}
	return g, nil
}
