// Command eagr-serve runs a multi-query EAGr session as an HTTP service
// over a synthetic or edge-list graph. See internal/server for the JSON
// API: clients register standing queries at runtime (POST /queries), read
// them (GET /queries/{id}/read), and stream continuous results over SSE
// (GET /queries/{id}/watch). An initial query is registered from the flags
// so the legacy single-query routes keep working out of the box.
//
// Usage:
//
//	eagr-serve -listen :8080 -graph social -nodes 10000 -aggregate "topk(3)"
//	eagr-serve -edgelist graph.el -aggregate sum -window 10
//
// The server shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests (including open /watch streams) before exiting.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	eagr "repro"
	"repro/internal/graph"
	"repro/internal/server"
	"repro/internal/workload"
)

func main() {
	var (
		listen   = flag.String("listen", ":8080", "listen address")
		kind     = flag.String("graph", "social", "graph family: social | web")
		nodes    = flag.Int("nodes", 10000, "synthetic graph size")
		deg      = flag.Int("degree", 10, "average degree")
		edgelist = flag.String("edgelist", "", "load graph from an edge-list file instead")
		aggSpec  = flag.String("aggregate", "sum", "initial query aggregate: sum|count|avg|max|min|distinct|topk(k)|stddev|topk~(k)|distinct~")
		window   = flag.Int("window", 1, "initial query tuple window size per writer")
		cont     = flag.Bool("continuous", false, "compile the initial query with continuous (all-push) semantics")
		alg      = flag.String("alg", "", "overlay algorithm (empty = auto)")
		seed     = flag.Int64("seed", 1, "random seed for synthetic graphs")
		grace    = flag.Duration("grace", 10*time.Second, "graceful shutdown timeout")
		tsJump   = flag.Int64("ingest-max-ts-jump", 0, "reject /ingest events whose timestamp runs further than this ahead of the stream (0 = unbounded; guards the watermark against corrupt far-future timestamps)")
	)
	flag.Parse()

	var g *graph.Graph
	switch {
	case *edgelist != "":
		var err error
		g, err = loadEdgeList(*edgelist)
		if err != nil {
			log.Fatal(err)
		}
	case *kind == "social":
		g = workload.SocialGraph(*nodes, *deg, *seed)
	case *kind == "web":
		g = workload.WebGraph(*nodes, 4**deg, *deg, *seed)
	default:
		log.Fatalf("unknown graph family %q", *kind)
	}
	log.Printf("graph: %d nodes, %d edges", g.NumNodes(), g.NumEdges())

	sess, err := eagr.Open(g, eagr.Options{Algorithm: *alg, Iterations: 6})
	if err != nil {
		log.Fatal(err)
	}
	q, err := sess.Register(eagr.QuerySpec{
		Aggregate:    *aggSpec,
		WindowTuples: *window,
		Continuous:   *cont,
	})
	if err != nil {
		log.Fatal(err)
	}
	st := q.Stats()
	log.Printf("registered query %d: aggregate=%s algorithm=%s sharing-index=%.1f%% partials=%d maintainable=%v",
		q.ID(), *aggSpec, st.Algorithm, st.SharingIndex*100, st.Partials, st.Maintainable)

	api := server.New(sess, server.WithMaxTimestampJump(*tsJump))
	srv := &http.Server{Addr: *listen, Handler: api}
	// End open /watch SSE streams when Shutdown begins, so draining does
	// not wait out the grace period on long-lived watchers. The session
	// Ingestor closes only AFTER Shutdown returns: in-flight /ingest
	// requests must drain, not get ErrIngestorClosed mid-stream.
	srv.RegisterOnShutdown(api.CloseWatchers)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() {
		<-ctx.Done()
		log.Printf("signal received; draining for up to %v", *grace)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		err := srv.Shutdown(shutdownCtx)
		api.Close()
		done <- err
	}()

	log.Printf("serving on %s", *listen)
	if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	if err := <-done; err != nil {
		log.Fatalf("shutdown: %v", err)
	}
	log.Printf("shut down cleanly")
}

// loadEdgeList reads "src dst" pairs (one per line, '#' comments), sizing
// the graph to the largest id seen.
func loadEdgeList(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	type edge struct{ u, v int }
	var edges []edge
	maxID := -1
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		var u, v int
		if _, err := fmt.Sscan(text, &u, &v); err != nil {
			return nil, fmt.Errorf("%s:%d: %v", path, line, err)
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("%s:%d: negative node id", path, line)
		}
		edges = append(edges, edge{u, v})
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	g := graph.NewWithNodes(maxID + 1)
	for _, e := range edges {
		if err := g.AddEdge(graph.NodeID(e.u), graph.NodeID(e.v)); err != nil {
			// Tolerate duplicate edges in input files.
			continue
		}
	}
	return g, nil
}
