// Command eagr-serve runs a multi-query EAGr session as an HTTP service
// over a synthetic or edge-list graph. See internal/server for the JSON
// API: clients register standing queries at runtime (POST /queries), read
// them (GET /queries/{id}/read), and stream continuous results over SSE
// (GET /queries/{id}/watch). An initial query is registered from the flags
// so the legacy single-query routes keep working out of the box.
//
// Usage:
//
//	eagr-serve -listen :8080 -graph social -nodes 10000 -aggregate "topk(3)"
//	eagr-serve -edgelist graph.el -aggregate sum -window 10
//	eagr-serve -data-dir /var/lib/eagr -fsync per-batch
//
// With -data-dir the session is durable: ingested events are logged to a
// write-ahead log under the directory, state is checkpointed periodically
// (-checkpoint-interval) and on shutdown, and a restart with the same
// -data-dir recovers the graph, the registered queries, and every window
// before serving. On a recovered directory the flag-derived initial query
// is skipped — the recovered query set wins. -fsync picks the durability/
// throughput trade-off (per-batch | interval | off; see -fsync-interval).
//
// The server shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests (including open /watch streams) before exiting; with -data-dir
// it then checkpoints and writes a clean-shutdown marker so the next
// start skips WAL replay.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	eagr "repro"
	"repro/internal/graph"
	"repro/internal/server"
	"repro/internal/workload"
)

func main() {
	var (
		listen   = flag.String("listen", ":8080", "listen address")
		kind     = flag.String("graph", "social", "graph family: social | web")
		nodes    = flag.Int("nodes", 10000, "synthetic graph size")
		deg      = flag.Int("degree", 10, "average degree")
		edgelist = flag.String("edgelist", "", "load graph from an edge-list file instead")
		aggSpec  = flag.String("aggregate", "sum", "initial query aggregate: sum|count|avg|max|min|distinct|topk(k)|stddev|topk~(k)|distinct~")
		window   = flag.Int("window", 1, "initial query tuple window size per writer")
		cont     = flag.Bool("continuous", false, "compile the initial query with continuous (all-push) semantics")
		alg      = flag.String("alg", "", "overlay algorithm (empty = auto)")
		seed     = flag.Int64("seed", 1, "random seed for synthetic graphs")
		grace    = flag.Duration("grace", 10*time.Second, "graceful shutdown timeout")
		tsJump   = flag.Int64("ingest-max-ts-jump", 0, "reject /ingest events whose timestamp runs further than this ahead of the stream (0 = unbounded; guards the watermark against corrupt far-future timestamps)")
		manualEx = flag.Bool("ingest-manual-expire", false, "do not expire time-based windows on the local ingest watermark; only POST /expire advances them (for shard servers behind eagr-router, which owns the fleet-wide minimum watermark)")

		autotune         = flag.Bool("autotune", false, "run the self-driving adaptivity controller: background sampling of observed push/pull rates, frontier flips, cold-view demotion, and full re-plan cutovers (see /stats \"autotune\")")
		autotuneInterval = flag.Duration("autotune-interval", 2*time.Second, "controller sampling period with -autotune")
		autotuneRatio    = flag.Float64("autotune-ratio", 1.15, "observed-cost/fresh-plan-cost ratio that triggers a full re-plan cutover with -autotune")
		autotuneCooldown = flag.Duration("autotune-cooldown", 30*time.Second, "minimum time between re-plan cutovers per overlay with -autotune")

		dataDir    = flag.String("data-dir", "", "durability directory: WAL + checkpoints (empty = in-memory only)")
		fsyncMode  = flag.String("fsync", "per-batch", "WAL fsync policy with -data-dir: per-batch | interval | off")
		fsyncEvery = flag.Duration("fsync-interval", time.Second, "fsync cadence under -fsync interval")
		ckptEvery  = flag.Duration("checkpoint-interval", time.Minute, "background checkpoint cadence with -data-dir (0 = only at shutdown)")
	)
	flag.Parse()

	var g *graph.Graph
	switch {
	case *edgelist != "":
		var err error
		g, err = loadEdgeList(*edgelist)
		if err != nil {
			log.Fatal(err)
		}
	case *kind == "social":
		g = workload.SocialGraph(*nodes, *deg, *seed)
	case *kind == "web":
		g = workload.WebGraph(*nodes, 4**deg, *deg, *seed)
	default:
		log.Fatalf("unknown graph family %q", *kind)
	}

	opts := eagr.Options{Algorithm: *alg, Iterations: 6}
	if *autotune {
		opts.Autotune = &eagr.AutotuneOptions{
			Interval:         *autotuneInterval,
			DegradationRatio: *autotuneRatio,
			Cooldown:         *autotuneCooldown,
		}
	}
	var sess *eagr.Session
	recoveredQueries := 0
	if *dataDir != "" {
		policy, err := eagr.ParseFsyncPolicy(*fsyncMode)
		if err != nil {
			log.Fatal(err)
		}
		var rec *eagr.Recovery
		// The synthetic/edge-list graph only seeds a FRESH directory; a
		// recovered one restores its own checkpointed graph.
		sess, rec, err = eagr.OpenDurable(g, eagr.DurabilityOptions{
			Dir:                *dataDir,
			Fsync:              policy,
			FsyncInterval:      *fsyncEvery,
			CheckpointInterval: *ckptEvery,
		}, opts)
		if err != nil {
			log.Fatal(err)
		}
		recoveredQueries = rec.RecoveredQueries
		if rec.CleanShutdown {
			log.Printf("recovered %s: clean shutdown, %d queries, checkpoint lsn %d (no replay)",
				*dataDir, rec.RecoveredQueries, rec.CheckpointLSN)
		} else {
			log.Printf("recovered %s: %d queries, %d batches / %d events replayed (truncated tail: %v) in %v",
				*dataDir, rec.RecoveredQueries, rec.ReplayedBatches, rec.ReplayedEvents, rec.TruncatedTail, rec.Duration)
		}
	} else {
		var err error
		sess, err = eagr.Open(g, opts)
		if err != nil {
			log.Fatal(err)
		}
	}
	g = sess.Graph()
	log.Printf("graph: %d nodes, %d edges", g.NumNodes(), g.NumEdges())

	if recoveredQueries > 0 {
		// The recovered query set wins; the flag-derived initial query is
		// only a fresh-start convenience.
		log.Printf("serving %d recovered queries; skipping initial registration", recoveredQueries)
	} else {
		q, err := sess.Register(eagr.QuerySpec{
			Aggregate:    *aggSpec,
			WindowTuples: *window,
			Continuous:   *cont,
		})
		if err != nil {
			log.Fatal(err)
		}
		st := q.Stats()
		log.Printf("registered query %d: aggregate=%s algorithm=%s sharing-index=%.1f%% partials=%d maintainable=%v",
			q.ID(), *aggSpec, st.Algorithm, st.SharingIndex*100, st.Partials, st.Maintainable)
	}

	serverOpts := []server.Option{server.WithMaxTimestampJump(*tsJump)}
	if *manualEx {
		serverOpts = append(serverOpts, server.WithManualExpiry())
	}
	api := server.New(sess, serverOpts...)
	srv := &http.Server{Addr: *listen, Handler: api}
	// End open /watch SSE streams when Shutdown begins, so draining does
	// not wait out the grace period on long-lived watchers. The session
	// Ingestor closes only AFTER Shutdown returns: in-flight /ingest
	// requests must drain, not get ErrIngestorClosed mid-stream.
	srv.RegisterOnShutdown(api.CloseWatchers)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() {
		<-ctx.Done()
		log.Printf("signal received; draining for up to %v", *grace)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		err := srv.Shutdown(shutdownCtx)
		api.Close()
		// Stop the adaptivity controller before the final checkpoint so no
		// re-plan cutover races the durability close.
		sess.StopAutotune()
		if *dataDir != "" {
			// Final checkpoint + clean-shutdown marker: the next start
			// skips WAL replay entirely.
			if cerr := sess.CloseDurability(); cerr != nil {
				log.Printf("close durability: %v", cerr)
			} else {
				log.Printf("checkpointed and marked clean shutdown")
			}
		}
		done <- err
	}()

	log.Printf("serving on %s", *listen)
	if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	if err := <-done; err != nil {
		log.Fatalf("shutdown: %v", err)
	}
	log.Printf("shut down cleanly")
}

// loadEdgeList reads "src dst" pairs (one per line, '#' comments), sizing
// the graph to the largest id seen.
func loadEdgeList(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	type edge struct{ u, v int }
	var edges []edge
	maxID := -1
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		var u, v int
		if _, err := fmt.Sscan(text, &u, &v); err != nil {
			return nil, fmt.Errorf("%s:%d: %v", path, line, err)
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("%s:%d: negative node id", path, line)
		}
		edges = append(edges, edge{u, v})
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	g := graph.NewWithNodes(maxID + 1)
	for _, e := range edges {
		if err := g.AddEdge(graph.NodeID(e.u), graph.NodeID(e.v)); err != nil {
			// Tolerate duplicate edges in input files.
			continue
		}
	}
	return g, nil
}
