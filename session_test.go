package eagr

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/workload"
)

func TestSessionSharesPartialAggregators(t *testing.T) {
	// Acceptance criterion: two same-aggregate queries on one session own
	// fewer partial aggregators than two independent single-query systems.
	solo, err := OpenQuery(ring(32), QuerySpec{Aggregate: "sum"}, Options{Algorithm: "vnma"})
	if err != nil {
		t.Fatal(err)
	}
	independent := 2 * solo.Stats().Partials
	if independent == 0 {
		t.Skip("fixture produced no partials")
	}

	sess, err := Open(ring(32), Options{Algorithm: "vnma"})
	if err != nil {
		t.Fatal(err)
	}
	q1, err := sess.Register(QuerySpec{Aggregate: "sum"})
	if err != nil {
		t.Fatal(err)
	}
	q2, err := sess.Register(QuerySpec{Aggregate: "sum"})
	if err != nil {
		t.Fatal(err)
	}
	st := sess.Stats()
	if st.Queries != 2 || st.Groups != 1 {
		t.Fatalf("stats = %+v, want 2 queries in 1 group", st)
	}
	if st.Partials >= independent {
		t.Fatalf("session partials = %d, independent = %d; sharing must win", st.Partials, independent)
	}
	if q1.Stats().Shared != 2 || q2.Stats().Shared != 2 {
		t.Fatal("both handles must report Shared=2")
	}
	// Both handles answer identically from the shared aggregators.
	_ = sess.Write(1, 5, 0)
	r1, _ := q1.Read(0)
	r2, _ := q2.Read(0)
	if !r1.Eq(r2) {
		t.Fatalf("shared queries disagree: %v vs %v", r1, r2)
	}
}

// TestCompatKeyCanonicalization pins that equivalent spellings of one
// configuration share an overlay: WindowTuples 0 and 1 both mean
// most-recent-value, Hops 0 and 1 both mean 1-hop, "" and "dataflow" are
// the same mode, and 0 iterations is the construct default.
func TestCompatKeyCanonicalization(t *testing.T) {
	sess, err := Open(ring(8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Register(QuerySpec{Aggregate: "sum"}); err != nil {
		t.Fatal(err)
	}
	q, err := sess.Register(QuerySpec{Aggregate: "sum", WindowTuples: 1, Hops: 1},
		Options{Mode: "dataflow", Iterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Stats().Shared; got != 2 {
		t.Fatalf("equivalent spellings share = %d, want 2", got)
	}
	if got := sess.Stats().Groups; got != 1 {
		t.Fatalf("groups = %d, want 1", got)
	}
	// Hops via spec and the same neighborhood via Options are one config.
	h1, err := sess.Register(QuerySpec{Aggregate: "sum", Hops: 2})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := sess.Register(QuerySpec{Aggregate: "sum"}, Options{Neighborhood: KHop(2)})
	if err != nil {
		t.Fatal(err)
	}
	if h1.Stats().Shared != 2 || h2.Stats().Shared != 2 {
		t.Fatalf("hops-vs-neighborhood spellings: shared = %d/%d, want 2/2",
			h1.Stats().Shared, h2.Stats().Shared)
	}
	// Distinct K beyond Name()'s "in-khop" collapse are different member
	// views: they share ONE merged overlay (same family, same underlying
	// system) but never each other's exact member — their results must
	// stay independent.
	h3, err := sess.Register(QuerySpec{Aggregate: "sum", Hops: 3})
	if err != nil {
		t.Fatal(err)
	}
	h4, err := sess.Register(QuerySpec{Aggregate: "sum", Hops: 4})
	if err != nil {
		t.Fatal(err)
	}
	if h3.Internal() != h4.Internal() {
		t.Fatal("3-hop and 4-hop sum queries should merge into one family overlay")
	}
	if h3.Stats().Shared != 1 || h4.Stats().Shared != 1 {
		t.Fatalf("merged members must not count as exact twins: shared = %d/%d",
			h3.Stats().Shared, h4.Stats().Shared)
	}
	if fam := h3.Stats().Family; fam < 2 {
		t.Fatalf("family size = %d, want >= 2", fam)
	}
	// Same for filtered neighborhoods over different-depth bases: the base
	// identity distinguishes the member views inside the shared family.
	keep := func(_ *Graph, _, _ NodeID) bool { return true }
	f3, err := sess.Register(QuerySpec{Aggregate: "sum"},
		Options{Neighborhood: Filtered(KHop(3), keep, "near")})
	if err != nil {
		t.Fatal(err)
	}
	f5, err := sess.Register(QuerySpec{Aggregate: "sum"},
		Options{Neighborhood: Filtered(KHop(5), keep, "near")})
	if err != nil {
		t.Fatal(err)
	}
	if f3.Stats().Shared != 1 || f5.Stats().Shared != 1 {
		t.Fatalf("filtered 3-hop and 5-hop bases must not share exactly: %d/%d",
			f3.Stats().Shared, f5.Stats().Shared)
	}
	// On the 8-ring, every node's 3-hop in-neighborhood has 6 nodes and
	// the 4-hop one 7: after one write everywhere, the merged members must
	// read their OWN views, not each other's.
	for i := NodeID(0); i < 8; i++ {
		if err := sess.Write(i, 1, 1); err != nil {
			t.Fatal(err)
		}
	}
	r3, err := h3.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := h4.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Scalar != 6 || r4.Scalar != 7 {
		t.Fatalf("merged views answer wrong neighborhoods: 3-hop=%d (want 6), 4-hop=%d (want 7)",
			r3.Scalar, r4.Scalar)
	}
}

func TestContinuousModeCanonicalization(t *testing.T) {
	sess, err := Open(ring(6))
	if err != nil {
		t.Fatal(err)
	}
	// Continuous forces all-push at compile time; an explicit all-push
	// spelling is the same configuration and must share.
	c1, err := sess.Register(QuerySpec{Aggregate: "sum", Continuous: true})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := sess.Register(QuerySpec{Aggregate: "sum", Continuous: true}, Options{Mode: "all-push"})
	if err != nil {
		t.Fatal(err)
	}
	if c1.Internal() != c2.Internal() {
		t.Fatal("continuous queries with equivalent modes must share an overlay")
	}
}

func TestUnknownModeAndAlgorithmTyped(t *testing.T) {
	sess, err := Open(ring(6))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Register(QuerySpec{Aggregate: "sum"}, Options{Mode: "allpush"}); !errors.Is(err, ErrIncompatibleQuery) {
		t.Fatalf("unknown mode: err = %v, want ErrIncompatibleQuery", err)
	}
	if _, err := sess.Register(QuerySpec{Aggregate: "sum"}, Options{Algorithm: "bogus"}); !errors.Is(err, ErrIncompatibleQuery) {
		t.Fatalf("unknown algorithm: err = %v, want ErrIncompatibleQuery", err)
	}
}

func TestSessionDistinctQueriesCoexist(t *testing.T) {
	sess, err := Open(ring(12))
	if err != nil {
		t.Fatal(err)
	}
	sum, _ := sess.Register(QuerySpec{Aggregate: "sum"})
	max, _ := sess.Register(QuerySpec{Aggregate: "max"})
	win, _ := sess.Register(QuerySpec{Aggregate: "sum", WindowTuples: 4})
	if got := sess.Stats().Groups; got != 3 {
		t.Fatalf("groups = %d, want 3 (different aggregate/window must not share)", got)
	}
	for i := 0; i < 12; i++ {
		_ = sess.Write(NodeID(i), int64(i), int64(i))
	}
	s, _ := sum.Read(6) // N(6) = {5, 7}
	m, _ := max.Read(6)
	w, _ := win.Read(6)
	if s.Scalar != 12 || m.Scalar != 7 || w.Scalar != 12 {
		t.Fatalf("sum=%v max=%v windowed=%v", s, m, w)
	}
}

func TestQueryCloseRetires(t *testing.T) {
	sess, err := Open(ring(8))
	if err != nil {
		t.Fatal(err)
	}
	q1, _ := sess.Register(QuerySpec{Aggregate: "sum"})
	q2, _ := sess.Register(QuerySpec{Aggregate: "sum"})
	if err := q1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := q1.Close(); !errors.Is(err, ErrQueryClosed) {
		t.Fatalf("double close: err = %v, want ErrQueryClosed", err)
	}
	if _, err := q1.Read(0); !errors.Is(err, ErrQueryClosed) {
		t.Fatalf("read after close: err = %v, want ErrQueryClosed", err)
	}
	if _, _, err := q1.Subscribe(1); !errors.Is(err, ErrQueryClosed) {
		t.Fatalf("subscribe after close: err = %v, want ErrQueryClosed", err)
	}
	// The shared overlay survives while q2 references it.
	_ = sess.Write(1, 3, 0)
	if r, err := q2.Read(0); err != nil || r.Scalar != 3 {
		t.Fatalf("surviving query read = %v, %v", r, err)
	}
	if st := sess.Stats(); st.Queries != 1 || st.Groups != 1 {
		t.Fatalf("stats after close = %+v", st)
	}
	if err := q2.Close(); err != nil {
		t.Fatal(err)
	}
	if st := sess.Stats(); st.Queries != 0 || st.Groups != 0 {
		t.Fatalf("stats after last close = %+v", st)
	}
	// The session itself stays usable: register afresh.
	q3, err := sess.Register(QuerySpec{Aggregate: "count"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q3.Read(0); err != nil {
		t.Fatal(err)
	}
}

func TestQuerySubscribeThroughFacade(t *testing.T) {
	g := NewGraph(3)
	_ = g.AddEdge(1, 0)
	_ = g.AddEdge(2, 0)
	sess, err := Open(g)
	if err != nil {
		t.Fatal(err)
	}
	q, err := sess.Register(QuerySpec{Aggregate: "sum", Continuous: true})
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel, err := q.Subscribe(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Write(1, 4, 7); err != nil {
		t.Fatal(err)
	}
	u := <-ch
	if u.Node != 0 || u.Result.Scalar != 4 || u.TS != 7 {
		t.Fatalf("update = %+v, want node 0 sum 4 ts 7", u)
	}
	if st := q.Stats(); st.Subscribers != 1 {
		t.Fatalf("subscribers = %d, want 1", st.Subscribers)
	}
	cancel()
	cancel() // idempotent
	if _, ok := <-ch; ok {
		t.Fatal("channel must close on cancel")
	}
	if _, _, err := q.Subscribe(1, 99); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("subscribe unknown node: err = %v, want ErrUnknownNode", err)
	}
}

// TestSubscriptionSurvivesRecompile pins the regression where a structural
// change on a NON-maintainable overlay (full recompile, fresh engine)
// orphaned live subscriptions: the channel must keep delivering after the
// engine swap, and cancel must detach from the rebuilt engine.
func TestSubscriptionSurvivesRecompile(t *testing.T) {
	// vnmn + sum on this graph usually yields negative edges -> no
	// incremental maintainer -> AddEdge falls back to recompile. Overlay
	// construction is randomized, so retry until the compile comes out
	// non-maintainable (closing the query tears the group down, making
	// the next Register recompile from scratch).
	g := workload.SocialGraph(64, 8, 1)
	sess, err := Open(g, Options{Algorithm: "vnmn", Iterations: 6})
	if err != nil {
		t.Fatal(err)
	}
	var q *Query
	for attempt := 0; ; attempt++ {
		q, err = sess.Register(QuerySpec{Aggregate: "sum", Continuous: true})
		if err != nil {
			t.Fatal(err)
		}
		if !q.Stats().Maintainable {
			break
		}
		if attempt == 50 {
			t.Skip("could not build a non-maintainable fixture in 50 attempts")
		}
		_ = q.Close()
	}
	ch, cancel, err := q.Subscribe(64)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	// Find a missing edge to add (triggers the recompile).
	u, v := NodeID(-1), NodeID(-1)
search:
	for a := NodeID(0); a < 64; a++ {
		for b := NodeID(0); b < 64; b++ {
			if a != b && !g.HasEdge(a, b) {
				u, v = a, b
				break search
			}
		}
	}
	if u < 0 {
		t.Fatal("no missing edge in fixture")
	}
	if err := sess.AddEdge(u, v); err != nil {
		t.Fatal(err)
	}
	if err := sess.Write(u, 5, 1); err != nil {
		t.Fatal(err)
	}
	// The write must keep producing updates through the rebuilt engine.
	// On a vnmn overlay some closure readers receive the write along
	// canceling +/- paths (net-zero result), so drain until a reader with
	// a real contribution reports in.
	deadline := time.After(5 * time.Second)
	for {
		select {
		case upd := <-ch:
			if upd.Result.Valid {
				goto delivered
			}
		case <-deadline:
			t.Fatal("subscription went silent after the engine rebuild")
		}
	}
delivered:
	if q.Stats().Subscribers != 1 {
		t.Fatalf("subscribers after recompile = %d, want 1", q.Stats().Subscribers)
	}
	cancel()
	if _, ok := <-ch; ok {
		// Drain any buffered updates; the channel must eventually close.
		for range ch {
		}
	}
	if q.Stats().Subscribers != 0 {
		t.Fatalf("subscribers after cancel = %d, want 0", q.Stats().Subscribers)
	}
}

func TestQueryIDsAndLookup(t *testing.T) {
	sess, err := Open(ring(6))
	if err != nil {
		t.Fatal(err)
	}
	q1, _ := sess.Register(QuerySpec{Aggregate: "sum"})
	q2, _ := sess.Register(QuerySpec{Aggregate: "max"})
	if q1.ID() == q2.ID() {
		t.Fatal("ids must be unique")
	}
	if sess.Query(q1.ID()) != q1 || sess.Query(q2.ID()) != q2 {
		t.Fatal("lookup by id failed")
	}
	list := sess.Queries()
	if len(list) != 2 || list[0] != q1 || list[1] != q2 {
		t.Fatalf("Queries() = %v", list)
	}
	_ = q1.Close()
	if sess.Query(q1.ID()) != nil {
		t.Fatal("closed query must not resolve")
	}
	if sp := q2.Spec(); sp.Aggregate != "max" {
		t.Fatalf("spec = %+v", sp)
	}
}

// TestStatsConcurrentWithStructuralChanges pins the regression where
// Stats() walked the live overlay unserialized against structural repair.
func TestStatsConcurrentWithStructuralChanges(t *testing.T) {
	sess, err := Open(ring(24), Options{Algorithm: "iob"})
	if err != nil {
		t.Fatal(err)
	}
	q, err := sess.Register(QuerySpec{Aggregate: "sum"})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			u, v := NodeID(i%24), NodeID((i*7+3)%24)
			if u == v {
				continue
			}
			if err := sess.AddEdge(u, v); err == nil {
				_ = sess.RemoveEdge(u, v)
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 400; i++ {
			_ = q.Stats()
			_ = sess.Stats()
		}
	}()
	wg.Wait()
}

// TestSessionConcurrentLifecycle is the acceptance -race test: Register,
// Close and Subscribe churn concurrently with WriteBatch ingest.
func TestSessionConcurrentLifecycle(t *testing.T) {
	sess, err := Open(ring(32))
	if err != nil {
		t.Fatal(err)
	}
	anchor, err := sess.Register(QuerySpec{Aggregate: "sum", Continuous: true})
	if err != nil {
		t.Fatal(err)
	}
	events := make([]Event, 512)
	for i := range events {
		events[i] = NewWrite(NodeID(i%32), int64(i), int64(i))
	}
	stop := make(chan struct{})
	var ingest, wg sync.WaitGroup
	ingest.Add(1)
	go func() { // ingest storm
		defer ingest.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if err := sess.WriteBatch(events); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	wg.Add(1)
	go func() { // subscription churn on the anchor query
		defer wg.Done()
		for i := 0; i < 100; i++ {
			ch, cancel, err := anchor.Subscribe(4, 0)
			if err != nil {
				t.Error(err)
				return
			}
			select {
			case <-ch:
			default:
			}
			cancel()
		}
	}()
	wg.Add(1)
	go func() { // register/close churn, alternating shared and unshared
		defer wg.Done()
		for i := 0; i < 60; i++ {
			spec := QuerySpec{Aggregate: "sum", Continuous: true} // shares with anchor
			if i%2 == 0 {
				spec = QuerySpec{Aggregate: "count", WindowTuples: 2 + i%3}
			}
			q, err := sess.Register(spec)
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := q.Read(0); err != nil {
				t.Error(err)
				return
			}
			if err := q.Close(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	ingest.Wait()
	if _, err := anchor.Read(0); err != nil {
		t.Fatal(err)
	}
}

// TestMergedFamilySubscriptionIsolation: two queries merged into one family
// overlay must each observe only their own view's updates, and Covered must
// reflect each view's push coverage.
func TestMergedFamilySubscriptionIsolation(t *testing.T) {
	sess, err := Open(ring(8))
	if err != nil {
		t.Fatal(err)
	}
	q1, err := sess.Register(QuerySpec{Aggregate: "sum", Continuous: true})
	if err != nil {
		t.Fatal(err)
	}
	q2, err := sess.Register(QuerySpec{Aggregate: "sum", Continuous: true, Hops: 2})
	if err != nil {
		t.Fatal(err)
	}
	if q1.Internal() != q2.Internal() {
		t.Fatal("continuous 1-hop and 2-hop sums should merge into one family")
	}
	// Continuous queries compile all-push: every node of both views is
	// covered, and an unknown node is not.
	for v := NodeID(0); v < 8; v++ {
		if !q1.Covered(v) || !q2.Covered(v) {
			t.Fatalf("node %d must be covered on both merged views", v)
		}
	}
	if q1.Covered(99) {
		t.Fatal("unknown node must not be covered")
	}
	ch1, cancel1, err := q1.Subscribe(256, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel1()
	ch2, cancel2, err := q2.Subscribe(256, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel2()
	// On the ring, N1(3) = {2,4}; N2(3) = {1,2,4,5}. A write on 1 reaches
	// only the 2-hop view of node 3.
	if err := sess.Write(1, 10, 1); err != nil {
		t.Fatal(err)
	}
	select {
	case u := <-ch1:
		t.Fatalf("1-hop subscription saw a 2-hop-only update: %+v", u)
	default:
	}
	u := <-ch2
	if u.Node != 3 || u.Result.Scalar != 10 {
		t.Fatalf("2-hop update = %+v, want node 3 value 10", u)
	}
	// A write on 2 reaches both views.
	if err := sess.Write(2, 5, 2); err != nil {
		t.Fatal(err)
	}
	u1 := <-ch1
	if u1.Node != 3 || u1.Result.Scalar != 5 {
		t.Fatalf("1-hop update = %+v, want node 3 value 5", u1)
	}
	u2 := <-ch2
	if u2.Node != 3 || u2.Result.Scalar != 15 {
		t.Fatalf("2-hop update = %+v, want node 3 value 15", u2)
	}
}

// TestMergedFamilySessionStats: session stats must surface merged sharing.
func TestMergedFamilySessionStats(t *testing.T) {
	sess, err := Open(ring(8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Register(QuerySpec{Aggregate: "sum"}); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Register(QuerySpec{Aggregate: "sum", Hops: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Register(QuerySpec{Aggregate: "max"}); err != nil {
		t.Fatal(err)
	}
	st := sess.Stats()
	if st.Queries != 3 || st.Groups != 2 {
		t.Fatalf("queries/groups = %d/%d, want 3/2", st.Queries, st.Groups)
	}
	if st.MergedFamilies != 1 || st.MergedQueries != 2 {
		t.Fatalf("merged families/queries = %d/%d, want 1/2", st.MergedFamilies, st.MergedQueries)
	}
	qs := sess.Queries()
	shared, family, own := qs[0].Sharing()
	if shared != 1 || family != 2 || own != 8 {
		t.Fatalf("q1 sharing = %d/%d/%d, want 1/2/8", shared, family, own)
	}
}
