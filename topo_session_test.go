package eagr

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/topo"
)

// --- brute-force oracle over the session's real graph ---

func undirNbrs(g *Graph, v NodeID) map[NodeID]bool {
	n := map[NodeID]bool{}
	for _, u := range g.Out(v) {
		if u != v {
			n[u] = true
		}
	}
	for _, u := range g.In(v) {
		if u != v {
			n[u] = true
		}
	}
	return n
}

func bruteTriangles(g *Graph, v NodeID) int64 {
	nv := undirNbrs(g, v)
	nb := make([]NodeID, 0, len(nv))
	for u := range nv {
		nb = append(nb, u)
	}
	var t int64
	for i := 0; i < len(nb); i++ {
		na := undirNbrs(g, nb[i])
		for j := i + 1; j < len(nb); j++ {
			if na[nb[j]] {
				t++
			}
		}
	}
	return t
}

func bruteDensity(g *Graph, v NodeID) int64 {
	k := int64(len(undirNbrs(g, v)))
	if k < 2 {
		return 0
	}
	return bruteTriangles(g, v) * 2 * topo.Scale / (k * (k - 1))
}

func bruteWedges(g *Graph, v NodeID) int64 {
	k := int64(len(undirNbrs(g, v)))
	return k * (k - 1) / 2
}

func bruteEgoBetweenness(g *Graph, v NodeID) int64 {
	nv := undirNbrs(g, v)
	nb := make([]NodeID, 0, len(nv))
	for u := range nv {
		nb = append(nb, u)
	}
	var sum int64
	for i := 0; i < len(nb); i++ {
		na := undirNbrs(g, nb[i])
		for j := i + 1; j < len(nb); j++ {
			b := nb[j]
			if na[b] {
				continue
			}
			nbmap := undirNbrs(g, b)
			c := int64(0)
			for x := range nv {
				if x != nb[i] && x != b && na[x] && nbmap[x] {
					c++
				}
			}
			sum += topo.Scale / (1 + c)
		}
	}
	return sum
}

func TestTopoRegisterValidation(t *testing.T) {
	sess, err := Open(NewGraph(4))
	if err != nil {
		t.Fatal(err)
	}
	bad := []QuerySpec{
		{Aggregate: "density", WindowTuples: 3},  // no tuple windows
		{Aggregate: "triangles", WindowTime: 10}, // incremental: no window
		{Aggregate: "density", Hops: 2},          // 1-hop only
		{Aggregate: "wedges", WindowTime: 5},     // incremental: no window
		{Aggregate: "density(3)"},                // no parameter
	}
	for _, spec := range bad {
		if _, err := sess.Register(spec); !errors.Is(err, ErrIncompatibleQuery) {
			t.Fatalf("Register(%+v) err = %v, want ErrIncompatibleQuery", spec, err)
		}
	}
	if _, err := sess.Register(QuerySpec{Aggregate: "density"}, Options{Neighborhood: KHop(2)}); !errors.Is(err, ErrIncompatibleQuery) {
		t.Fatalf("custom neighborhood on topo query err = %v", err)
	}
	// Unknown names still fail the numeric way.
	if _, err := sess.Register(QuerySpec{Aggregate: "nope"}); !errors.Is(err, ErrIncompatibleQuery) {
		t.Fatalf("unknown aggregate err = %v", err)
	}
}

func TestTopoSpellingsShareOneView(t *testing.T) {
	sess, err := Open(NewGraph(4))
	if err != nil {
		t.Fatal(err)
	}
	q1, err := sess.Register(QuerySpec{Aggregate: "triangle"})
	if err != nil {
		t.Fatal(err)
	}
	q2, err := sess.Register(QuerySpec{Aggregate: "TRIANGLES"})
	if err != nil {
		t.Fatal(err)
	}
	if shared, _, _ := q1.Sharing(); shared != 2 {
		t.Fatalf("shared = %d, want 2 (spelling variants must share one view)", shared)
	}
	if st := sess.Stats(); st.TopoViews != 1 || st.Queries != 2 {
		t.Fatalf("stats = %+v, want 1 topo view hosting 2 queries", st)
	}
	if st := q2.Stats(); st.Mode != "topo" || st.Algorithm != "incremental" || st.Shared != 2 {
		t.Fatalf("query stats = %+v", st)
	}
	if err := q1.Close(); err != nil {
		t.Fatal(err)
	}
	if st := sess.Stats(); st.TopoViews != 1 {
		t.Fatalf("view torn down while still referenced: %+v", st)
	}
	if err := q2.Close(); err != nil {
		t.Fatal(err)
	}
	if st := sess.Stats(); st.TopoViews != 0 {
		t.Fatalf("view leaked after last close: %+v", st)
	}
	if _, err := q1.Read(0); !errors.Is(err, ErrQueryClosed) {
		t.Fatalf("read after close err = %v", err)
	}
}

// TestTopoSessionOracleChurn is the acceptance property test at the session
// layer: 5 seeds of random mixed content/edge/node churn with expiry,
// ingested through ApplyBatch alongside numeric queries, after which every
// topology aggregate must match a brute-force recompute over the live
// graph. Run with -race in CI, it also races churn against subscriptions.
func TestTopoSessionOracleChurn(t *testing.T) {
	const n = 24
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		sess, err := Open(NewGraph(n))
		if err != nil {
			t.Fatal(err)
		}
		density, err := sess.Register(QuerySpec{Aggregate: "density"})
		if err != nil {
			t.Fatal(err)
		}
		tri, err := sess.Register(QuerySpec{Aggregate: "triangles"})
		if err != nil {
			t.Fatal(err)
		}
		wedges, err := sess.Register(QuerySpec{Aggregate: "wedges"})
		if err != nil {
			t.Fatal(err)
		}
		ebc, err := sess.Register(QuerySpec{Aggregate: "ego-betweenness"})
		if err != nil {
			t.Fatal(err)
		}
		// A time-windowed numeric query keeps the content/expiry machinery
		// engaged in the same stream.
		counts, err := sess.Register(QuerySpec{Aggregate: "count", WindowTime: 50})
		if err != nil {
			t.Fatal(err)
		}
		// A standing all-ego subscription races delivery against churn.
		ch, cancel, err := tri.Subscribe(64)
		if err != nil {
			t.Fatal(err)
		}
		defer cancel()
		go func() {
			for range ch {
			}
		}()

		ts := int64(0)
		for burst := 0; burst < 40; burst++ {
			batch := make([]Event, 0, 16)
			for i := 0; i < 12; i++ {
				ts++
				u := NodeID(rng.Intn(n))
				w := NodeID(rng.Intn(n))
				switch op := rng.Intn(100); {
				case op < 33:
					batch = append(batch, NewWrite(u, int64(rng.Intn(100)), ts))
				case op < 64:
					batch = append(batch, NewEdgeAdd(u, w, ts))
				case op < 90:
					batch = append(batch, NewEdgeRemove(u, w, ts))
				case op < 95:
					batch = append(batch, NewNodeAdd(ts))
				default:
					// May target an already-dead node; the batch skips it.
					batch = append(batch, NewNodeRemove(u, ts))
				}
			}
			// Errors are expected: duplicate edges, removals of absent
			// edges — the batch still applies the rest.
			_ = sess.ApplyBatch(batch)
			if burst%7 == 3 {
				sess.ExpireAll(ts - 25)
			}
			g := sess.Graph()
			for v := NodeID(0); int(v) < g.MaxID(); v++ {
				if !g.Alive(v) {
					continue
				}
				if r, err := density.Read(v); err != nil || r.Scalar != bruteDensity(g, v) {
					t.Fatalf("seed %d burst %d: density(%d) = %+v/%v, want %d", seed, burst, v, r, err, bruteDensity(g, v))
				}
				if r, err := tri.Read(v); err != nil || r.Scalar != bruteTriangles(g, v) {
					t.Fatalf("seed %d burst %d: triangles(%d) = %+v/%v, want %d", seed, burst, v, r, err, bruteTriangles(g, v))
				}
				if r, err := wedges.Read(v); err != nil || r.Scalar != bruteWedges(g, v) {
					t.Fatalf("seed %d burst %d: wedges(%d) = %+v/%v, want %d", seed, burst, v, r, err, bruteWedges(g, v))
				}
				if r, err := ebc.Read(v); err != nil || r.Scalar != bruteEgoBetweenness(g, v) {
					t.Fatalf("seed %d burst %d: EB(%d) = %+v/%v, want %d", seed, burst, v, r, err, bruteEgoBetweenness(g, v))
				}
			}
		}
		if sess.Graph().Alive(0) {
			if _, err := counts.Read(0); err != nil {
				t.Fatalf("seed %d: numeric query broke alongside topo: %v", seed, err)
			}
		}
	}
}

func TestTopoSubscribeDelivery(t *testing.T) {
	sess, err := Open(NewGraph(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := sess.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	tri, err := sess.Register(QuerySpec{Aggregate: "triangles"})
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel, err := tri.Subscribe(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Closing 0-1-2 changes ego 1's triangle count to 1.
	if err := sess.ApplyBatch([]Event{NewEdgeAdd(2, 0, 99)}); err != nil {
		t.Fatal(err)
	}
	select {
	case u := <-ch:
		if u.Node != 1 || u.Result.Scalar != 1 || u.TS != 99 {
			t.Fatalf("update = %+v", u)
		}
	default:
		t.Fatal("no subscription delivery for structural change")
	}
	// A content write must NOT produce topo deliveries.
	if err := sess.Write(0, 7, 100); err != nil {
		t.Fatal(err)
	}
	select {
	case u := <-ch:
		t.Fatalf("content write leaked a topo update: %+v", u)
	default:
	}
	cancel()
	if _, ok := <-ch; ok {
		t.Fatal("channel open after cancel")
	}
	// Subscribing to an unknown node errors.
	if _, _, err := tri.Subscribe(8, 99); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("subscribe unknown err = %v", err)
	}
}

func TestTopoEgoBetweennessWindowedSession(t *testing.T) {
	sess, err := Open(NewGraph(6))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range [][2]NodeID{{1, 0}, {2, 0}} {
		if err := sess.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	ebc, err := sess.Register(QuerySpec{Aggregate: "ego-betweenness", WindowTime: 10})
	if err != nil {
		t.Fatal(err)
	}
	sess.ExpireAll(100) // arm the schedule
	// Star gains a leaf: EB(0) = C(3,2) = 3 once recomputed.
	if err := sess.AddEdge(3, 0); err != nil {
		t.Fatal(err)
	}
	sess.ExpireAll(105) // inside the window: no recompute yet
	if st := ebc.Stats(); st.Algorithm != "windowed-recompute" {
		t.Fatalf("stats = %+v", st)
	}
	sess.ExpireAll(111) // past the cadence: recompute
	r, err := ebc.Read(0)
	if err != nil || r.Scalar != 3*topo.Scale {
		t.Fatalf("EB(0) after tick = %+v/%v, want %d", r, err, 3*topo.Scale)
	}
	// ReadWire is meaningless for topology values.
	if _, err := ebc.ReadWire(0); !errors.Is(err, ErrIncompatibleQuery) {
		t.Fatalf("ReadWire err = %v", err)
	}
}

// TestTopoContentPathZeroAlloc pins the acceptance bound: with a topo query
// registered, content-only batches must not touch the topo engine at all —
// the write hot path stays exactly as allocation-free as without it.
func TestTopoContentPathZeroAlloc(t *testing.T) {
	g := NewGraph(64)
	for v := 1; v < 64; v++ {
		if err := g.AddEdge(NodeID(v), NodeID(v%8)); err != nil {
			t.Fatal(err)
		}
	}
	sess, err := Open(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Register(QuerySpec{Aggregate: "sum"}); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Register(QuerySpec{Aggregate: "triangles"}); err != nil {
		t.Fatal(err)
	}
	events := make([]Event, 32)
	for i := range events {
		events[i] = NewWrite(NodeID(1+i%63), int64(i), int64(i))
	}
	// Warm the engine's write pools.
	for i := 0; i < 4; i++ {
		if err := sess.WriteBatch(events); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := sess.WriteBatch(events); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("content-only WriteBatch allocates %.1f allocs/op with a topo query registered, want 0", allocs)
	}
}

// TestTopoDurableRecovery: topology-valued aggregates survive crash
// recovery with zero dedicated WAL records — topo state is a pure function
// of the recovered graph plus the replayed expiry watermarks. A durable
// session with all four topo aggregates (and a numeric query in the same
// stream) takes mixed churn, checkpoints mid-stream, crashes, and the
// recovered session must answer every query exactly like a never-crashed
// oracle that applied the same batches and expires.
func TestTopoDurableRecovery(t *testing.T) {
	const n = 16
	for seed := int64(1); seed <= 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		dir := t.TempDir()
		s, rec, err := OpenDurable(NewGraph(n), DurabilityOptions{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		if rec.CleanShutdown {
			t.Fatal("fresh dir cannot be a clean shutdown")
		}
		specs := []QuerySpec{
			{Aggregate: "density"},
			{Aggregate: "triangles"},
			{Aggregate: "wedges"},
			{Aggregate: "ego-betweenness", WindowTime: 10},
			{Aggregate: "sum", WindowTime: 40},
		}
		registerAll(t, s, specs)

		var acked [][]Event
		var expires []int64
		ts := int64(0)
		for burst := 0; burst < 30; burst++ {
			batch := make([]Event, 0, 8)
			for i := 0; i < 8; i++ {
				ts++
				u, w := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
				switch op := rng.Intn(10); {
				case op < 4:
					batch = append(batch, NewWrite(u, int64(rng.Intn(50)), ts))
				case op < 8:
					batch = append(batch, NewEdgeAdd(u, w, ts))
				default:
					batch = append(batch, NewEdgeRemove(u, w, ts))
				}
			}
			// Per-event structural skips are fine; the batch is logged and
			// replays with identical effect.
			_ = s.ApplyBatch(batch)
			acked = append(acked, batch)
			if burst%6 == 5 {
				s.ExpireAll(ts - 20)
				expires = append(expires, ts-20)
			}
			if burst == 14 {
				if err := s.Checkpoint(); err != nil {
					t.Fatalf("mid-stream checkpoint: %v", err)
				}
			}
		}
		// Final tick after all churn so the windowed-recompute snapshot and
		// the on-the-fly fallback agree on both sides of the crash.
		s.ExpireAll(ts)
		expires = append(expires, ts)
		if err := s.SimulateCrash(); err != nil {
			t.Fatal(err)
		}

		s2, rec2, err := OpenDurable(nil, DurabilityOptions{Dir: dir})
		if err != nil {
			t.Fatalf("seed %d: recovery: %v", seed, err)
		}
		if rec2.CleanShutdown {
			t.Fatal("crash recovered as clean shutdown")
		}
		if rec2.RecoveredQueries != len(specs) {
			t.Fatalf("recovered %d queries, want %d (topo specs must be durable)", rec2.RecoveredQueries, len(specs))
		}

		oracle, err := Open(NewGraph(n))
		if err != nil {
			t.Fatal(err)
		}
		registerAll(t, oracle, specs)
		ei := 0
		for bi, b := range acked {
			_ = oracle.ApplyBatch(b)
			if bi%6 == 5 && ei < len(expires)-1 {
				oracle.ExpireAll(expires[ei])
				ei++
			}
		}
		oracle.ExpireAll(expires[len(expires)-1])
		assertSameResults(t, fmt.Sprintf("topo seed %d", seed), s2, oracle)

		// Recovered topo queries keep maintaining: one more structural
		// change must flow through to reads.
		q := s2.Queries()[1] // triangles
		g2 := s2.Graph()
		var a, b NodeID = 0, 1
		if err := s2.ApplyBatch([]Event{NewEdgeAdd(a, b, ts+1)}); err == nil {
			if r, err := q.Read(a); err != nil || r.Scalar != bruteTriangles(g2, a) {
				t.Fatalf("seed %d: post-recovery maintenance broken: %+v/%v, want %d", seed, r, err, bruteTriangles(g2, a))
			}
		}
		if err := s2.CloseDurability(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTopoSubscriptionChurnRace races structural churn and watermark
// advances against topology reads and subscription lifecycles. It asserts
// nothing about values — the oracle tests own exactness — its job is to
// give the race detector surface area on the listener/subscription paths.
func TestTopoSubscriptionChurnRace(t *testing.T) {
	const n = 64
	sess, err := Open(NewGraph(n))
	if err != nil {
		t.Fatal(err)
	}
	density, err := sess.Register(QuerySpec{Aggregate: "density"})
	if err != nil {
		t.Fatal(err)
	}
	tri, err := sess.Register(QuerySpec{Aggregate: "triangles"})
	if err != nil {
		t.Fatal(err)
	}
	eb, err := sess.Register(QuerySpec{Aggregate: "ego-betweenness", WindowTime: 30})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// One writer: edge-churn batches with periodic watermark ticks.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		rng := rand.New(rand.NewSource(11))
		ts := int64(0)
		for i := 0; i < 400; i++ {
			batch := make([]Event, 0, 8)
			for j := 0; j < 8; j++ {
				ts++
				u, w := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
				if rng.Intn(2) == 0 {
					batch = append(batch, NewEdgeAdd(u, w, ts))
				} else {
					batch = append(batch, NewEdgeRemove(u, w, ts))
				}
			}
			// Duplicate adds and absent removes are expected churn noise.
			_ = sess.ApplyBatch(batch)
			if i%16 == 15 {
				sess.ExpireAll(ts)
			}
		}
	}()

	// Readers hitting the standing views while the writer churns.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := NodeID(rng.Intn(n))
				_, _ = density.Read(v)
				_, _ = tri.Read(v)
				_, _ = eb.Read(v)
			}
		}(int64(100 + r))
	}

	// Subscription cyclers: subscribe, drain a few pushes, cancel, repeat.
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ch, cancel, err := tri.Subscribe(32)
				if err != nil {
					t.Error(err)
					return
				}
				for k := 0; k < 4; k++ {
					select {
					case <-ch:
					case <-stop:
						cancel()
						return
					}
				}
				cancel()
			}
		}()
	}
	wg.Wait()
}
