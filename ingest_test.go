package eagr

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/workload"
)

// TestIngestorWatermarkMatchesManualExpire checks that watermark-driven
// expiry produces exactly the state a caller hand-threading ExpireAll
// would: same writes, same timestamps, one side through an Ingestor with
// auto-expiry, the other through Write + a manual ExpireAll at the
// watermark.
func TestIngestorWatermarkMatchesManualExpire(t *testing.T) {
	const nodes = 24
	const lateness = 3
	mk := func() (*Session, *Query) {
		sess, err := Open(ring(nodes))
		if err != nil {
			t.Fatal(err)
		}
		q, err := sess.Register(QuerySpec{Aggregate: "sum", WindowTime: 10})
		if err != nil {
			t.Fatal(err)
		}
		return sess, q
	}
	auto, autoQ := mk()
	manual, manualQ := mk()

	ing, err := auto.Ingest(IngestOptions{BatchSize: 8, FlushInterval: -1, Lateness: lateness})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	maxTS := int64(0)
	for i := 0; i < 400; i++ {
		v := NodeID(rng.Intn(nodes))
		val := int64(rng.Intn(50))
		// Slightly out-of-order timestamps, within the lateness bound.
		ts := int64(i+1) - int64(rng.Intn(lateness+1))
		if ts < 1 {
			ts = 1
		}
		if err := ing.SendEvent(NewWrite(v, val, ts)); err != nil {
			t.Fatal(err)
		}
		if err := manual.Write(v, val, ts); err != nil {
			t.Fatal(err)
		}
		if ts > maxTS {
			maxTS = ts
		}
	}
	if err := ing.Flush(); err != nil {
		t.Fatal(err)
	}
	wm, ok := ing.Watermark()
	if !ok {
		t.Fatal("watermark not advanced after flush")
	}
	if want := maxTS - lateness; wm != want {
		t.Fatalf("watermark = %d, want maxTS-lateness = %d", wm, want)
	}
	manual.ExpireAll(wm)
	for v := 0; v < nodes; v++ {
		got, err1 := autoQ.Read(NodeID(v))
		want, err2 := manualQ.Read(NodeID(v))
		if err1 != nil || err2 != nil {
			t.Fatalf("node %d: %v / %v", v, err1, err2)
		}
		if got.Valid != want.Valid || got.Scalar != want.Scalar {
			t.Fatalf("node %d: ingestor %+v, manual %+v", v, got, want)
		}
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestIngestorExpiryDrivesContinuousSubscription is the acceptance
// criterion: a time-windowed Continuous query receives expiry-driven
// subscription updates through an Ingestor with NO caller ExpireAll.
func TestIngestorExpiryDrivesContinuousSubscription(t *testing.T) {
	g := NewGraph(3)
	_ = g.AddEdge(1, 0) // node 0 aggregates over writers 1 and 2
	_ = g.AddEdge(2, 0)
	sess, err := Open(g)
	if err != nil {
		t.Fatal(err)
	}
	q, err := sess.Register(QuerySpec{Aggregate: "count", WindowTime: 5, Continuous: true})
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel, err := q.Subscribe(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	ing, err := sess.Ingest(IngestOptions{BatchSize: 1, FlushInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := ing.SendEvent(NewWrite(1, 10, 1)); err != nil {
		t.Fatal(err)
	}
	if err := ing.Flush(); err != nil {
		t.Fatal(err)
	}
	// The write at ts=100 advances the watermark past 1's window, so the
	// subscriber must observe the count drop back to 1 — writer 1's value
	// expired with no ExpireAll anywhere in this test.
	if err := ing.SendEvent(NewWrite(2, 20, 100)); err != nil {
		t.Fatal(err)
	}
	if err := ing.Flush(); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for {
		select {
		case u, open := <-ch:
			if !open {
				t.Fatal("subscription closed before expiry update")
			}
			if u.Node == 0 && u.Result.Valid && u.Result.Scalar == 1 && u.TS == 100 {
				// Expiry-driven update observed (the write at ts=100 made
				// the count 2; only the expiry brings it back to 1 at the
				// watermark timestamp).
				res, err := q.Read(0)
				if err != nil {
					t.Fatal(err)
				}
				if res.Scalar != 1 {
					t.Fatalf("post-expiry read = %+v, want count 1", res)
				}
				_ = ing.Close()
				return
			}
		case <-deadline:
			t.Fatal("no expiry-driven subscription update within deadline")
		}
	}
}

// TestIngestorBackpressureTyped exercises the fail-fast policy: with a
// depth-1 queue, batch size 1 and slow (structural) batches, a burst of
// sends must surface ErrBackpressure, and everything accepted must still
// apply.
func TestIngestorBackpressureTyped(t *testing.T) {
	const nodes = 400
	sess, err := Open(workload.SocialGraph(nodes, 6, 1), Options{Algorithm: "iob"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Register(QuerySpec{Aggregate: "sum"}); err != nil {
		t.Fatal(err)
	}
	ing, err := sess.Ingest(IngestOptions{
		BatchSize:     1,
		QueueDepth:    1,
		FlushInterval: -1,
		Backpressure:  BackpressureError,
		Clock:         LogicalClock(),
	})
	if err != nil {
		t.Fatal(err)
	}
	sawBackpressure := false
	accepted := 0
	for i := 0; i < 5000 && !sawBackpressure; i++ {
		u := NodeID(i % nodes)
		v := NodeID((i*7 + 1) % nodes)
		var err error
		if sess.Graph().HasEdge(u, v) {
			err = ing.SendEvent(NewEdgeRemove(u, v, 0))
		} else {
			err = ing.SendEvent(NewEdgeAdd(u, v, 0))
		}
		switch {
		case err == nil:
			accepted++
		case errors.Is(err, ErrBackpressure):
			sawBackpressure = true
		default:
			t.Fatalf("unexpected send error: %v", err)
		}
	}
	if !sawBackpressure {
		t.Fatal("never observed ErrBackpressure with a depth-1 queue")
	}
	_ = ing.Flush() // structural toggles may legitimately error; drain them
	if st := ing.Stats(); st.Applied != int64(accepted) || st.Rejected == 0 {
		t.Fatalf("stats = %+v, want applied == accepted (%d) and rejected > 0", st, accepted)
	}
	if err := ing.Close(); err != nil && !errors.Is(err, ErrIngestorClosed) {
		t.Fatal(err)
	}
	if err := ing.Send(0, 1); !errors.Is(err, ErrIngestorClosed) {
		t.Fatalf("Send after Close = %v, want ErrIngestorClosed", err)
	}
	if err := ing.Flush(); !errors.Is(err, ErrIngestorClosed) {
		t.Fatalf("Flush after Close = %v, want ErrIngestorClosed", err)
	}
	if err := ing.Close(); !errors.Is(err, ErrIngestorClosed) {
		t.Fatalf("second Close = %v, want ErrIngestorClosed", err)
	}
}

// TestIngestorAutoFlushByInterval checks a partial batch applies without
// reaching BatchSize and without an explicit Flush.
func TestIngestorAutoFlushByInterval(t *testing.T) {
	sess, err := Open(ring(8))
	if err != nil {
		t.Fatal(err)
	}
	q, err := sess.Register(QuerySpec{Aggregate: "sum"})
	if err != nil {
		t.Fatal(err)
	}
	ing, err := sess.Ingest(IngestOptions{BatchSize: 1 << 20, FlushInterval: 2 * time.Millisecond, Clock: LogicalClock()})
	if err != nil {
		t.Fatal(err)
	}
	defer ing.Close()
	if err := ing.Send(1, 42); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if res, err := q.Read(0); err == nil && res.Valid && res.Scalar == 42 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("interval flush never applied the buffered write")
}

// TestIngestorConcurrentLifecycle is the -race stress of the streaming
// surface: concurrent senders (content + structural churn) on one
// Ingestor, racing adaptive Rebalance and query attach/retire on the same
// session.
func TestIngestorConcurrentLifecycle(t *testing.T) {
	const nodes = 200
	sess, err := Open(workload.SocialGraph(nodes, 6, 2), Options{Algorithm: "iob"})
	if err != nil {
		t.Fatal(err)
	}
	base, err := sess.Register(QuerySpec{Aggregate: "sum", WindowTuples: 2})
	if err != nil {
		t.Fatal(err)
	}
	ing, err := sess.Ingest(IngestOptions{
		BatchSize:     32,
		FlushInterval: time.Millisecond,
		Clock:         LogicalClock(),
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 600; i++ {
				if rng.Intn(12) == 0 {
					u := NodeID(rng.Intn(nodes))
					v := NodeID(rng.Intn(nodes))
					ev := NewEdgeAdd(u, v, 0)
					if rng.Intn(2) == 0 {
						ev = NewEdgeRemove(u, v, 0)
					}
					_ = ing.SendEvent(ev) // duplicate/missing edges are fine
					continue
				}
				if err := ing.Send(NodeID(rng.Intn(nodes)), int64(rng.Intn(100))); err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(s + 1))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if _, err := sess.Rebalance(); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			q, err := sess.Register(QuerySpec{Aggregate: "max", WindowTuples: 1 + i%3})
			if err != nil {
				t.Error(err)
				return
			}
			time.Sleep(time.Millisecond)
			if err := q.Close(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if err := ing.Close(); err != nil {
		t.Logf("close drained errors (expected under churn): %v", err)
	}
	if _, err := base.Read(0); err != nil && !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("post-stress read: %v", err)
	}
	st := ing.Stats()
	if st.Applied != st.Sent {
		t.Fatalf("close left events unapplied: %+v", st)
	}
}

// TestIngestorTimestampJumpGuard checks MaxTimestampJump: a far-future
// explicit timestamp is rejected with the typed error instead of
// ratcheting the watermark (and expiring every window) forever.
func TestIngestorTimestampJumpGuard(t *testing.T) {
	sess, err := Open(ring(8))
	if err != nil {
		t.Fatal(err)
	}
	q, err := sess.Register(QuerySpec{Aggregate: "sum", WindowTime: 50})
	if err != nil {
		t.Fatal(err)
	}
	ing, err := sess.Ingest(IngestOptions{BatchSize: 4, FlushInterval: -1, MaxTimestampJump: 100})
	if err != nil {
		t.Fatal(err)
	}
	if err := ing.SendEvent(NewWrite(1, 7, 1_000_000)); err != nil {
		t.Fatalf("first event establishes the domain, got %v", err)
	}
	if err := ing.SendEvent(NewWrite(2, 3, 1_000_050)); err != nil {
		t.Fatalf("in-bound jump rejected: %v", err)
	}
	if err := ing.SendEvent(NewWrite(1, 9, 1_000_000+9_000_000_000)); !errors.Is(err, ErrTimestampJump) {
		t.Fatalf("far-future ts = %v, want ErrTimestampJump", err)
	}
	if err := ing.Flush(); err != nil {
		t.Fatal(err)
	}
	// The poisoned timestamp never entered the stream: the watermark stays
	// in the real domain, and writer 2's in-window value (read through its
	// ring neighbor, node 3) survives.
	if wm, ok := ing.Watermark(); !ok || wm != 1_000_050 {
		t.Fatalf("watermark = %d (%v), want 1000050", wm, ok)
	}
	if res, err := q.Read(3); err != nil || !res.Valid || res.Scalar != 3 {
		t.Fatalf("windowed read after rejected jump = %+v (%v), want 3", res, err)
	}
	if st := ing.Stats(); st.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", st.Rejected)
	}
	_ = ing.Close()
}

// TestIngestorCloseFlushesTail pins Close's flush guarantee: buffered
// events apply before Close returns, under the fail-fast policy too.
func TestIngestorCloseFlushesTail(t *testing.T) {
	sess, err := Open(ring(8))
	if err != nil {
		t.Fatal(err)
	}
	q, err := sess.Register(QuerySpec{Aggregate: "count"})
	if err != nil {
		t.Fatal(err)
	}
	ing, err := sess.Ingest(IngestOptions{
		BatchSize:     1 << 10,
		FlushInterval: -1,
		QueueDepth:    1,
		Backpressure:  BackpressureError,
		Clock:         LogicalClock(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := ing.Send(NodeID(i), 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	if st := ing.Stats(); st.Applied != 5 || st.Applied != st.Sent {
		t.Fatalf("Close left the tail unapplied: %+v", st)
	}
	if res, err := q.Read(0); err != nil || res.Scalar != 1 {
		t.Fatalf("read after Close = %+v (%v), want count 1", res, err)
	}
}

// TestIngestorWatermarkUnderflowSaturates pins the saturating watermark: a
// timestamp near MinInt64 with a positive Lateness must not wrap the
// watermark to a huge positive value and expire every window.
func TestIngestorWatermarkUnderflowSaturates(t *testing.T) {
	sess, err := Open(ring(8))
	if err != nil {
		t.Fatal(err)
	}
	q, err := sess.Register(QuerySpec{Aggregate: "sum", WindowTime: 50})
	if err != nil {
		t.Fatal(err)
	}
	ing, err := sess.Ingest(IngestOptions{BatchSize: 1, FlushInterval: -1, Lateness: 100})
	if err != nil {
		t.Fatal(err)
	}
	if err := ing.SendEvent(NewWrite(1, 7, math.MinInt64+5)); err != nil {
		t.Fatal(err)
	}
	if err := ing.Flush(); err != nil {
		t.Fatal(err)
	}
	if wm, ok := ing.Watermark(); !ok || wm > math.MinInt64+5 {
		t.Fatalf("watermark = %d (%v), want saturated near MinInt64", wm, ok)
	}
	// The saturated ExpireAll must not wipe the window (TimeWindow.Expire
	// guards the ts-T underflow): the value just written survives.
	if res, err := q.Read(0); err != nil || !res.Valid || res.Scalar != 7 {
		t.Fatalf("read after saturated expiry = %+v (%v), want 7", res, err)
	}
	// A later real-domain write still lands and is readable: the ratchet
	// was not poisoned.
	if err := ing.SendEvent(NewWrite(1, 9, 1000)); err != nil {
		t.Fatal(err)
	}
	if err := ing.Flush(); err != nil {
		t.Fatal(err)
	}
	if res, err := q.Read(0); err != nil || !res.Valid || res.Scalar != 9 {
		t.Fatalf("read after recovery = %+v (%v), want 9", res, err)
	}
	_ = ing.Close()
}
