package eagr

import (
	"errors"
	"testing"
)

// ring builds a small graph where node i follows (receives content from)
// nodes i-1 and i+1.
func ring(n int) *Graph {
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		_ = g.AddEdge(NodeID((i+1)%n), NodeID(i))
		_ = g.AddEdge(NodeID((i+n-1)%n), NodeID(i))
	}
	return g
}

// one registers a single query on a fresh session over g.
func one(t *testing.T, g *Graph, spec QuerySpec, opts ...Options) (*Session, *Query) {
	t.Helper()
	sess, err := Open(g, opts...)
	if err != nil {
		t.Fatal(err)
	}
	q, err := sess.Register(spec)
	if err != nil {
		t.Fatal(err)
	}
	return sess, q
}

func TestOpenDefaultsAndReadWrite(t *testing.T) {
	sess, q := one(t, ring(8), QuerySpec{Aggregate: "sum"})
	for i := 0; i < 8; i++ {
		if err := sess.Write(NodeID(i), int64(i), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// N(3) = {2, 4}: sum = 6.
	got, err := q.Read(3)
	if err != nil {
		t.Fatal(err)
	}
	if got.Scalar != 6 {
		t.Fatalf("read(3) = %v, want 6", got)
	}
}

func TestOpenTopKAndWindow(t *testing.T) {
	sess, q := one(t, ring(6), QuerySpec{Aggregate: "topk(1)", WindowTuples: 3})
	// Node 1 and 3 feed node 2. Write 7 twice on node 1.
	_ = sess.Write(1, 7, 0)
	_ = sess.Write(1, 7, 1)
	_ = sess.Write(3, 9, 2)
	got, err := q.Read(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.List) != 1 || got.List[0] != 7 {
		t.Fatalf("top1 = %v, want [7]", got)
	}
}

func TestOpenTwoHop(t *testing.T) {
	// Chain 0 -> 1 -> 2: with Hops=2, N(2) = {1, 0}.
	g := NewGraph(3)
	_ = g.AddEdge(0, 1)
	_ = g.AddEdge(1, 2)
	sess, q := one(t, g, QuerySpec{Aggregate: "sum", Hops: 2})
	_ = sess.Write(0, 5, 0)
	_ = sess.Write(1, 7, 1)
	got, err := q.Read(2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Scalar != 12 {
		t.Fatalf("2-hop sum = %v, want 12", got)
	}
}

func TestOpenOptionsAndStats(t *testing.T) {
	_, q := one(t, ring(10), QuerySpec{Aggregate: "max"}, Options{Algorithm: "iob", Mode: "all-push"})
	st := q.Stats()
	if st.Algorithm != "iob" || st.Mode != "all-push" {
		t.Fatalf("stats = %+v", st)
	}
	if st.Readers != 10 || st.Writers == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Shared != 1 {
		t.Fatalf("unshared query reports Shared=%d, want 1", st.Shared)
	}
}

func TestRegisterErrors(t *testing.T) {
	g := ring(4)
	sess, err := Open(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Register(QuerySpec{Aggregate: "nope"}); !errors.Is(err, ErrIncompatibleQuery) {
		t.Fatalf("unknown aggregate: err = %v, want ErrIncompatibleQuery", err)
	}
	if _, err := Open(g, Options{}, Options{}); err == nil {
		t.Fatal("two Options values should fail")
	}
	if _, err := sess.Register(QuerySpec{Aggregate: "max"}, Options{Algorithm: "vnmn"}); !errors.Is(err, ErrIncompatibleQuery) {
		t.Fatalf("illegal algorithm/aggregate: err = %v, want ErrIncompatibleQuery", err)
	}
	if _, err := sess.Register(QuerySpec{Aggregate: "sum", WindowTuples: 3, WindowTime: 10}); !errors.Is(err, ErrConflictingWindow) {
		t.Fatalf("conflicting windows: err = %v, want ErrConflictingWindow", err)
	}
}

func TestReadUnknownNodeTyped(t *testing.T) {
	g := NewGraph(2)
	_ = g.AddEdge(1, 0)
	_, q := one(t, g, QuerySpec{Aggregate: "sum"})
	// Node 99 was never added to the graph, so no overlay reader exists.
	if _, err := q.Read(99); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("read of unknown node: err = %v, want ErrUnknownNode", err)
	}
	sess := q.sess
	if err := sess.RemoveNode(99); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("remove of missing node: err = %v, want ErrUnknownNode", err)
	}
}

func TestDynamicEdgesThroughFacade(t *testing.T) {
	sess, q := one(t, ring(6), QuerySpec{Aggregate: "sum"}, Options{Algorithm: "iob"})
	for i := 0; i < 6; i++ {
		_ = sess.Write(NodeID(i), 1, int64(i))
	}
	before, _ := q.Read(0) // N(0) = {1, 5}: 2
	if before.Scalar != 2 {
		t.Fatalf("read(0) = %v, want 2", before)
	}
	if err := sess.AddEdge(3, 0); err != nil {
		t.Fatal(err)
	}
	after, _ := q.Read(0)
	if after.Scalar != 3 {
		t.Fatalf("read(0) after AddEdge = %v, want 3", after)
	}
	if err := sess.RemoveEdge(3, 0); err != nil {
		t.Fatal(err)
	}
	again, _ := q.Read(0)
	if again.Scalar != 2 {
		t.Fatalf("read(0) after RemoveEdge = %v, want 2", again)
	}
}

func TestCustomAggregateThroughFacade(t *testing.T) {
	RegisterAggregate("first42", func(int) Aggregate { return firstAgg{} })
	// Exercised through the deprecated single-query shim on purpose: the
	// legacy surface must keep working end to end.
	sys, err := OpenQuery(ring(4), QuerySpec{Aggregate: "first42"}, Options{Algorithm: "baseline"})
	if err != nil {
		t.Fatal(err)
	}
	_ = sys.Write(1, 9, 0)
	got, err := sys.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Valid || got.Scalar != 42 {
		t.Fatalf("custom aggregate = %v, want 42", got)
	}
}

// firstAgg is a toy user-defined aggregate exercising the public API.
type firstAgg struct{}

func (firstAgg) Name() string      { return "first42" }
func (firstAgg) Props() Properties { return Properties{} }
func (firstAgg) NewPAO() PAO       { return &firstPAO{} }

type firstPAO struct{ n int64 }

func (p *firstPAO) AddValue(int64)    { p.n++ }
func (p *firstPAO) RemoveValue(int64) { p.n-- }
func (p *firstPAO) Merge(o PAO)       { p.n += o.(*firstPAO).n }
func (p *firstPAO) Unmerge(o PAO)     { p.n -= o.(*firstPAO).n }
func (p *firstPAO) Replace(old, new PAO) {
	if old != nil {
		p.Unmerge(old)
	}
	if new != nil {
		p.Merge(new)
	}
}
func (p *firstPAO) Finalize() Result { return Result{Scalar: 42, Valid: p.n > 0} }
func (p *firstPAO) Reset()           { p.n = 0 }
func (p *firstPAO) Clone() PAO       { c := *p; return &c }
