package eagr

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestPipelinedIngestMatchesSequentialOracle is the pipelined tentpole's
// correctness anchor: a random mixed content/structural stream through an
// Ingestor with a multi-worker apply pool must leave every query in
// exactly the state the one-event-at-a-time mutators produce. Structural
// fences and the per-node partition are what make this hold — content
// writes to one writer never reorder, and every structural event sees all
// earlier content applied. The oracle session replays the stream
// sequentially and expires once at the ingestor's final watermark (time
// windows only ever drop values monotonically, so one final advance lands
// on the same state as the pipelined side's incremental ones).
func TestPipelinedIngestMatchesSequentialOracle(t *testing.T) {
	specs := []QuerySpec{
		{Aggregate: "sum", WindowTuples: 3},
		{Aggregate: "count"},
		{Aggregate: "max", WindowTuples: 2},
		{Aggregate: "sum", WindowTime: 40},
	}
	for _, workers := range []int{2, 4} {
		for _, batch := range []int{16, 128} {
			rng := rand.New(rand.NewSource(int64(workers*1000 + batch)))
			bo := newBatchOracle(t, 48, specs, Options{Algorithm: "iob"})
			events := mixedStream(rng, 48, 1500, 6)
			for i := range events {
				// mixedStream timestamps from 0, but a zero-TS event would be
				// wall-clock stamped by the Ingestor; start stream time at 1.
				events[i].TS++
			}
			ing, err := bo.batch.Ingest(IngestOptions{
				BatchSize:     batch,
				QueueDepth:    4,
				FlushInterval: -1,
				ApplyWorkers:  workers,
			})
			if err != nil {
				t.Fatal(err)
			}
			if n, err := ing.SendEvents(events); err != nil || n != len(events) {
				t.Fatalf("SendEvents = %d, %v", n, err)
			}
			// Close surfaces the per-event skip errors the stream's
			// deliberately-invalid events produce; the oracle ignores the
			// identical skips in applySequential.
			_ = ing.Close()
			for _, ev := range events {
				bo.applySequential(ev)
			}
			if wm, ok := ing.Watermark(); ok {
				bo.oracle.ExpireAll(wm)
			}
			bo.compare(fmt.Sprintf("workers=%d batch=%d", workers, batch))
		}
	}
}

// TestPipelinedIngestRacesAutotuneAndSubscriptions is the CI stress
// companion (run under -race): a pipelined Ingestor drives a
// content-heavy stream while the autotune controller ticks re-planning
// cutovers and a subscription consumer drains continuous updates. The
// test asserts liveness and a final cross-check against an undisturbed
// sequential session; the race detector owns the memory-safety claim.
func TestPipelinedIngestRacesAutotuneAndSubscriptions(t *testing.T) {
	const nodes = 64
	mk := func() (*Session, *Query) {
		g := NewGraph(nodes)
		for i := 0; i < nodes; i++ {
			_ = g.AddEdge(NodeID((i+1)%nodes), NodeID(i))
			_ = g.AddEdge(NodeID((i+5)%nodes), NodeID(i))
		}
		sess, err := Open(g, Options{Algorithm: "baseline"})
		if err != nil {
			t.Fatal(err)
		}
		q, err := sess.Register(QuerySpec{Aggregate: "sum", Continuous: true})
		if err != nil {
			t.Fatal(err)
		}
		return sess, q
	}
	sess, q := mk()
	oracle, oq := mk()
	sess.EnableAutotune(AutotuneOptions{Interval: time.Millisecond, MinActivity: 1})
	defer sess.StopAutotune()

	ch, cancel, err := q.Subscribe(256, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	var drained sync.WaitGroup
	drained.Add(1)
	go func() {
		defer drained.Done()
		for range ch {
		}
	}()

	ing, err := sess.Ingest(IngestOptions{
		BatchSize:     32,
		QueueDepth:    4,
		FlushInterval: -1,
		ApplyWorkers:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	events := make([]Event, 0, 6000)
	for i := 0; i < 6000; i++ {
		events = append(events, NewWrite(NodeID(rng.Intn(nodes)), int64(rng.Intn(100)), int64(i+1)))
	}
	for off := 0; off < len(events); off += 97 {
		end := min(off+97, len(events))
		if _, err := ing.SendEvents(events[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	cancel()
	drained.Wait()

	for _, ev := range events {
		if err := oracle.Write(ev.Node, ev.Value, ev.TS); err != nil {
			t.Fatal(err)
		}
	}
	for v := 0; v < nodes; v++ {
		got, err1 := q.Read(NodeID(v))
		want, err2 := oq.Read(NodeID(v))
		if err1 != nil || err2 != nil {
			t.Fatalf("node %d: %v / %v", v, err1, err2)
		}
		if got.Valid != want.Valid || got.Scalar != want.Scalar {
			t.Fatalf("node %d: pipelined %+v, oracle %+v", v, got, want)
		}
	}
}

// TestPipelinedIngestStructuralFences checks the fence path specifically:
// a stream alternating content slabs with structural events that rewire
// the very nodes being written, at a batch size that puts several
// content/structural boundaries inside each batch.
func TestPipelinedIngestStructuralFences(t *testing.T) {
	bo := newBatchOracle(t, 32, []QuerySpec{{Aggregate: "sum", WindowTuples: 4}}, Options{Algorithm: "iob"})
	ing, err := bo.batch.Ingest(IngestOptions{
		BatchSize:     256,
		QueueDepth:    2,
		FlushInterval: -1,
		ApplyWorkers:  3,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(29))
	var events []Event
	ts := int64(0)
	for round := 0; round < 40; round++ {
		for i := 0; i < 20; i++ {
			ts++
			events = append(events, NewWrite(NodeID(rng.Intn(32)), int64(rng.Intn(50)), ts))
		}
		u, v := NodeID(rng.Intn(32)), NodeID(rng.Intn(32))
		ts++
		if rng.Intn(2) == 0 {
			events = append(events, NewEdgeAdd(u, v, ts))
		} else {
			events = append(events, NewEdgeRemove(u, v, ts))
		}
	}
	if _, err := ing.SendEvents(events); err != nil {
		t.Fatal(err)
	}
	// Close surfaces per-event skips (toggling an absent edge); the oracle
	// side ignores the identical skips.
	_ = ing.Close()
	for _, ev := range events {
		bo.applySequential(ev)
	}
	bo.compare("fences")
}

// TestSendEvents covers the slab entry point's contract: all-accepted
// count on success, the index of the first rejected event on error, and
// the closed-ingestor fast path.
func TestSendEvents(t *testing.T) {
	sess, err := Open(ring(8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Register(QuerySpec{Aggregate: "sum"}); err != nil {
		t.Fatal(err)
	}
	ing, err := sess.Ingest(IngestOptions{
		BatchSize:        4,
		FlushInterval:    -1,
		MaxTimestampJump: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	evs := []Event{
		NewWrite(0, 1, 5),
		NewWrite(1, 2, 6),
		NewWrite(2, 3, 1000), // jump of 994 > 10: rejected
		NewWrite(3, 4, 7),
	}
	n, err := ing.SendEvents(evs)
	if n != 2 || !errors.Is(err, ErrTimestampJump) {
		t.Fatalf("SendEvents = %d, %v; want 2, ErrTimestampJump", n, err)
	}
	// The two accepted events are buffered; the rejected one consumed
	// nothing after it.
	if n, err := ing.SendEvents(evs[3:]); n != 1 || err != nil {
		t.Fatalf("resume SendEvents = %d, %v", n, err)
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	if n, err := ing.SendEvents(evs[:1]); n != 0 || !errors.Is(err, ErrIngestorClosed) {
		t.Fatalf("closed SendEvents = %d, %v; want 0, ErrIngestorClosed", n, err)
	}
}
